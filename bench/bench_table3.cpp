// Reproduces Table III: detailed-routing wirelength / DRVs / via count
// for Baseline (GR+DR), the median-move ILP [18], and CR&P with k = 1
// and k = 10, plus the per-column averages.
//
// Paper reference values (averages): [18] -0.74% WL / +0.74% vias;
// Ours k=1 +0.04% WL / +0.80% vias; Ours k=10 +0.14% WL / +2.06% vias,
// with no new DRVs.  Absolute numbers differ (scaled synthetic suite +
// substitute substrate); the comparison SHAPE is the reproduction
// target: Ours(k=10) > Ours(k=1) on vias, via gains >> WL gains,
// [18] competitive only on the uncongested designs (test2/test3).
//
// Environment: CRP_SCALE (default 80), CRP_MAX_DESIGNS (default 10),
// CRP_B18_BUDGET ([18] time budget per design in seconds, default 300;
// the original binary crashed on test10, see EXPERIMENTS.md).
#include <iostream>
#include <vector>

#include "flow_common.hpp"

int main() {
  using namespace crp;
  using bench::FlowKind;
  using util::padLeft;
  using util::padRight;

  const double scale = bench::envDouble("CRP_SCALE", 80.0);
  const int maxDesigns = bench::envInt("CRP_MAX_DESIGNS", 10);
  const double b18Budget = bench::envDouble("CRP_B18_BUDGET", 300.0);
  auto suite = bmgen::ispdLikeSuite(scale);
  if (static_cast<int>(suite.size()) > maxDesigns) {
    suite.resize(maxDesigns);
  }

  std::cout << "=== Table III: wirelength / DRVs / vias, improvement vs "
               "baseline (scale 1/"
            << scale << ") ===\n";
  std::cout << padRight("Benchmark", 12) << padLeft("BL wl", 10)
            << padLeft("[18]%", 8) << padLeft("k=1%", 8)
            << padLeft("k=10%", 8) << padLeft("BL drv", 8)
            << padLeft("[18]", 6) << padLeft("k=1", 6) << padLeft("k=10", 6)
            << padLeft("BL vias", 9) << padLeft("[18]%", 8)
            << padLeft("k=1%", 8) << padLeft("k=10%", 8) << "\n";

  double sumWl18 = 0, sumWl1 = 0, sumWl10 = 0;
  double sumVia18 = 0, sumVia1 = 0, sumVia10 = 0;
  int counted18 = 0, counted = 0;
  long newDrvs10 = 0;

  for (const auto& entry : suite) {
    const auto design = bmgen::generateBenchmark(entry.spec);
    const auto base =
        bench::runFlow(entry, FlowKind::kBaseline, 1, {}, 1e9, &design);
    const auto m18 = bench::runFlow(entry, FlowKind::kMedian18, 1, {},
                                    b18Budget, &design);
    const auto k1 =
        bench::runFlow(entry, FlowKind::kCrp, 1, {}, 1e9, &design);
    const auto k10 =
        bench::runFlow(entry, FlowKind::kCrp, 10, {}, 1e9, &design);

    auto improve = [](geom::Coord baseValue, geom::Coord value) {
      return eval::improvementPercent(static_cast<double>(baseValue),
                                      static_cast<double>(value));
    };
    const double wl18 =
        m18.failed ? 0.0
                   : improve(base.metrics.wirelengthDbu,
                             m18.metrics.wirelengthDbu);
    const double wl1 =
        improve(base.metrics.wirelengthDbu, k1.metrics.wirelengthDbu);
    const double wl10 =
        improve(base.metrics.wirelengthDbu, k10.metrics.wirelengthDbu);
    const double via18 =
        m18.failed ? 0.0
                   : improve(base.metrics.viaCount, m18.metrics.viaCount);
    const double via1 = improve(base.metrics.viaCount, k1.metrics.viaCount);
    const double via10 =
        improve(base.metrics.viaCount, k10.metrics.viaCount);

    std::cout << padRight(entry.name, 12)
              << padLeft(std::to_string(base.metrics.wirelengthDbu), 10)
              << padLeft(m18.failed ? "Failed" : bench::pct(wl18), 8)
              << padLeft(bench::pct(wl1), 8) << padLeft(bench::pct(wl10), 8)
              << padLeft(std::to_string(base.metrics.totalDrvs()), 8)
              << padLeft(m18.failed
                             ? "Fail"
                             : std::to_string(m18.metrics.totalDrvs()),
                         6)
              << padLeft(std::to_string(k1.metrics.totalDrvs()), 6)
              << padLeft(std::to_string(k10.metrics.totalDrvs()), 6)
              << padLeft(std::to_string(base.metrics.viaCount), 9)
              << padLeft(m18.failed ? "Failed" : bench::pct(via18), 8)
              << padLeft(bench::pct(via1), 8)
              << padLeft(bench::pct(via10), 8) << "\n";

    ++counted;
    sumWl1 += wl1;
    sumWl10 += wl10;
    sumVia1 += via1;
    sumVia10 += via10;
    if (!m18.failed) {
      ++counted18;
      sumWl18 += wl18;
      sumVia18 += via18;
    }
    newDrvs10 += std::max(0, k10.metrics.totalDrvs() -
                                 base.metrics.totalDrvs());
  }

  if (counted > 0) {
    std::cout << padRight("Avg", 12) << padLeft("-", 10)
              << padLeft(counted18 ? bench::pct(sumWl18 / counted18) : "-",
                         8)
              << padLeft(bench::pct(sumWl1 / counted), 8)
              << padLeft(bench::pct(sumWl10 / counted), 8)
              << padLeft("-", 8) << padLeft("-", 6) << padLeft("-", 6)
              << padLeft("-", 6) << padLeft("-", 9)
              << padLeft(counted18 ? bench::pct(sumVia18 / counted18) : "-",
                         8)
              << padLeft(bench::pct(sumVia1 / counted), 8)
              << padLeft(bench::pct(sumVia10 / counted), 8) << "\n";
    std::cout << "paper avgs:  [18] -0.74% wl / +0.74% vias | k=1 +0.04% / "
                 "+0.80% | k=10 +0.14% / +2.06%\n";
    std::cout << "new DRVs introduced by k=10 across the suite (sum of "
                 "positive deltas): "
              << newDrvs10 << "\n";
  }
  return 0;
}
