# Empty dependencies file for crp.
# This may be replaced when dependencies are built.
