file(REMOVE_RECURSE
  "CMakeFiles/crp.dir/crp_cli.cpp.o"
  "CMakeFiles/crp.dir/crp_cli.cpp.o.d"
  "crp"
  "crp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
