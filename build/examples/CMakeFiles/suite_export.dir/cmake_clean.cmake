file(REMOVE_RECURSE
  "CMakeFiles/suite_export.dir/suite_export.cpp.o"
  "CMakeFiles/suite_export.dir/suite_export.cpp.o.d"
  "suite_export"
  "suite_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
