# Empty dependencies file for suite_export.
# This may be replaced when dependencies are built.
