# Empty compiler generated dependencies file for iteration_study.
# This may be replaced when dependencies are built.
