file(REMOVE_RECURSE
  "CMakeFiles/iteration_study.dir/iteration_study.cpp.o"
  "CMakeFiles/iteration_study.dir/iteration_study.cpp.o.d"
  "iteration_study"
  "iteration_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iteration_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
