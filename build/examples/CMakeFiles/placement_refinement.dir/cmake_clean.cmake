file(REMOVE_RECURSE
  "CMakeFiles/placement_refinement.dir/placement_refinement.cpp.o"
  "CMakeFiles/placement_refinement.dir/placement_refinement.cpp.o.d"
  "placement_refinement"
  "placement_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
