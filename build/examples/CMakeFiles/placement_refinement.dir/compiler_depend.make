# Empty compiler generated dependencies file for placement_refinement.
# This may be replaced when dependencies are built.
