file(REMOVE_RECURSE
  "CMakeFiles/congestion_relief.dir/congestion_relief.cpp.o"
  "CMakeFiles/congestion_relief.dir/congestion_relief.cpp.o.d"
  "congestion_relief"
  "congestion_relief.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_relief.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
