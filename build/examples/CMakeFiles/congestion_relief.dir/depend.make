# Empty dependencies file for congestion_relief.
# This may be replaced when dependencies are built.
