file(REMOVE_RECURSE
  "CMakeFiles/full_flow_files.dir/full_flow_files.cpp.o"
  "CMakeFiles/full_flow_files.dir/full_flow_files.cpp.o.d"
  "full_flow_files"
  "full_flow_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_flow_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
