# Empty dependencies file for full_flow_files.
# This may be replaced when dependencies are built.
