# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_db[1]_include.cmake")
include("/root/repo/build/tests/test_lefdef[1]_include.cmake")
include("/root/repo/build/tests/test_rsmt[1]_include.cmake")
include("/root/repo/build/tests/test_ilp[1]_include.cmake")
include("/root/repo/build/tests/test_groute[1]_include.cmake")
include("/root/repo/build/tests/test_droute[1]_include.cmake")
include("/root/repo/build/tests/test_legalizer[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_crp[1]_include.cmake")
include("/root/repo/build/tests/test_bmgen[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_dplace[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
