# Empty compiler generated dependencies file for test_droute.
# This may be replaced when dependencies are built.
