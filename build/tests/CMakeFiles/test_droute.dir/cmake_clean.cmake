file(REMOVE_RECURSE
  "CMakeFiles/test_droute.dir/test_droute.cpp.o"
  "CMakeFiles/test_droute.dir/test_droute.cpp.o.d"
  "test_droute"
  "test_droute.pdb"
  "test_droute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_droute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
