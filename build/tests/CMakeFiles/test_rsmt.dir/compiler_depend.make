# Empty compiler generated dependencies file for test_rsmt.
# This may be replaced when dependencies are built.
