file(REMOVE_RECURSE
  "CMakeFiles/test_rsmt.dir/test_rsmt.cpp.o"
  "CMakeFiles/test_rsmt.dir/test_rsmt.cpp.o.d"
  "test_rsmt"
  "test_rsmt.pdb"
  "test_rsmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
