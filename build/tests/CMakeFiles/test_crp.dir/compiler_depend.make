# Empty compiler generated dependencies file for test_crp.
# This may be replaced when dependencies are built.
