file(REMOVE_RECURSE
  "CMakeFiles/test_crp.dir/test_crp.cpp.o"
  "CMakeFiles/test_crp.dir/test_crp.cpp.o.d"
  "test_crp"
  "test_crp.pdb"
  "test_crp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
