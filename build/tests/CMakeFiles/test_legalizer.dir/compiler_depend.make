# Empty compiler generated dependencies file for test_legalizer.
# This may be replaced when dependencies are built.
