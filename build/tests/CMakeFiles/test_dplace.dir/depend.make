# Empty dependencies file for test_dplace.
# This may be replaced when dependencies are built.
