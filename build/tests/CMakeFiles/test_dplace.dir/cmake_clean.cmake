file(REMOVE_RECURSE
  "CMakeFiles/test_dplace.dir/test_dplace.cpp.o"
  "CMakeFiles/test_dplace.dir/test_dplace.cpp.o.d"
  "test_dplace"
  "test_dplace.pdb"
  "test_dplace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
