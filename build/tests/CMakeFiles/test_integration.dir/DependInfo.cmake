
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crp/CMakeFiles/crp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/crp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/bmgen/CMakeFiles/crp_bmgen.dir/DependInfo.cmake"
  "/root/repo/build/src/droute/CMakeFiles/crp_droute.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/crp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/legalizer/CMakeFiles/crp_legalizer.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/crp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/dplace/CMakeFiles/crp_dplace.dir/DependInfo.cmake"
  "/root/repo/build/src/groute/CMakeFiles/crp_groute.dir/DependInfo.cmake"
  "/root/repo/build/src/rsmt/CMakeFiles/crp_rsmt.dir/DependInfo.cmake"
  "/root/repo/build/src/lefdef/CMakeFiles/crp_lefdef.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/crp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/crp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
