# Empty compiler generated dependencies file for test_bmgen.
# This may be replaced when dependencies are built.
