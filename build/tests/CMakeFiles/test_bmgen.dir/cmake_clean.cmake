file(REMOVE_RECURSE
  "CMakeFiles/test_bmgen.dir/test_bmgen.cpp.o"
  "CMakeFiles/test_bmgen.dir/test_bmgen.cpp.o.d"
  "test_bmgen"
  "test_bmgen.pdb"
  "test_bmgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
