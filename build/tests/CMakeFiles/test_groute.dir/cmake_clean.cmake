file(REMOVE_RECURSE
  "CMakeFiles/test_groute.dir/test_groute.cpp.o"
  "CMakeFiles/test_groute.dir/test_groute.cpp.o.d"
  "test_groute"
  "test_groute.pdb"
  "test_groute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_groute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
