# Empty compiler generated dependencies file for test_groute.
# This may be replaced when dependencies are built.
