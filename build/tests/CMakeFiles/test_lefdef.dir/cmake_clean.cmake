file(REMOVE_RECURSE
  "CMakeFiles/test_lefdef.dir/test_lefdef.cpp.o"
  "CMakeFiles/test_lefdef.dir/test_lefdef.cpp.o.d"
  "test_lefdef"
  "test_lefdef.pdb"
  "test_lefdef[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lefdef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
