# Empty dependencies file for test_lefdef.
# This may be replaced when dependencies are built.
