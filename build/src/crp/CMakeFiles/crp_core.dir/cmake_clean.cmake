file(REMOVE_RECURSE
  "CMakeFiles/crp_core.dir/candidate_generation.cpp.o"
  "CMakeFiles/crp_core.dir/candidate_generation.cpp.o.d"
  "CMakeFiles/crp_core.dir/critical_cells.cpp.o"
  "CMakeFiles/crp_core.dir/critical_cells.cpp.o.d"
  "CMakeFiles/crp_core.dir/framework.cpp.o"
  "CMakeFiles/crp_core.dir/framework.cpp.o.d"
  "CMakeFiles/crp_core.dir/selection.cpp.o"
  "CMakeFiles/crp_core.dir/selection.cpp.o.d"
  "libcrp_core.a"
  "libcrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
