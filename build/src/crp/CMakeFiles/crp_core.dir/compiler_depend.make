# Empty compiler generated dependencies file for crp_core.
# This may be replaced when dependencies are built.
