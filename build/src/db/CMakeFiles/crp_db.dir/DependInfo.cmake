
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/database.cpp" "src/db/CMakeFiles/crp_db.dir/database.cpp.o" "gcc" "src/db/CMakeFiles/crp_db.dir/database.cpp.o.d"
  "/root/repo/src/db/design.cpp" "src/db/CMakeFiles/crp_db.dir/design.cpp.o" "gcc" "src/db/CMakeFiles/crp_db.dir/design.cpp.o.d"
  "/root/repo/src/db/gcell_grid.cpp" "src/db/CMakeFiles/crp_db.dir/gcell_grid.cpp.o" "gcc" "src/db/CMakeFiles/crp_db.dir/gcell_grid.cpp.o.d"
  "/root/repo/src/db/legality.cpp" "src/db/CMakeFiles/crp_db.dir/legality.cpp.o" "gcc" "src/db/CMakeFiles/crp_db.dir/legality.cpp.o.d"
  "/root/repo/src/db/library.cpp" "src/db/CMakeFiles/crp_db.dir/library.cpp.o" "gcc" "src/db/CMakeFiles/crp_db.dir/library.cpp.o.d"
  "/root/repo/src/db/tech.cpp" "src/db/CMakeFiles/crp_db.dir/tech.cpp.o" "gcc" "src/db/CMakeFiles/crp_db.dir/tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/crp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
