# Empty dependencies file for crp_db.
# This may be replaced when dependencies are built.
