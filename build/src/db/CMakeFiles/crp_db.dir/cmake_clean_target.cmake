file(REMOVE_RECURSE
  "libcrp_db.a"
)
