file(REMOVE_RECURSE
  "CMakeFiles/crp_db.dir/database.cpp.o"
  "CMakeFiles/crp_db.dir/database.cpp.o.d"
  "CMakeFiles/crp_db.dir/design.cpp.o"
  "CMakeFiles/crp_db.dir/design.cpp.o.d"
  "CMakeFiles/crp_db.dir/gcell_grid.cpp.o"
  "CMakeFiles/crp_db.dir/gcell_grid.cpp.o.d"
  "CMakeFiles/crp_db.dir/legality.cpp.o"
  "CMakeFiles/crp_db.dir/legality.cpp.o.d"
  "CMakeFiles/crp_db.dir/library.cpp.o"
  "CMakeFiles/crp_db.dir/library.cpp.o.d"
  "CMakeFiles/crp_db.dir/tech.cpp.o"
  "CMakeFiles/crp_db.dir/tech.cpp.o.d"
  "libcrp_db.a"
  "libcrp_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
