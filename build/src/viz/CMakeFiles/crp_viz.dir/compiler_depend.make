# Empty compiler generated dependencies file for crp_viz.
# This may be replaced when dependencies are built.
