file(REMOVE_RECURSE
  "CMakeFiles/crp_viz.dir/svg_writer.cpp.o"
  "CMakeFiles/crp_viz.dir/svg_writer.cpp.o.d"
  "libcrp_viz.a"
  "libcrp_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
