file(REMOVE_RECURSE
  "libcrp_viz.a"
)
