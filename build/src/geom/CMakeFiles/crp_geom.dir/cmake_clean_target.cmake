file(REMOVE_RECURSE
  "libcrp_geom.a"
)
