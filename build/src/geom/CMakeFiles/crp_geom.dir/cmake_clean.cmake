file(REMOVE_RECURSE
  "CMakeFiles/crp_geom.dir/geometry.cpp.o"
  "CMakeFiles/crp_geom.dir/geometry.cpp.o.d"
  "libcrp_geom.a"
  "libcrp_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
