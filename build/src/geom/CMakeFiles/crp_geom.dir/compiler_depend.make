# Empty compiler generated dependencies file for crp_geom.
# This may be replaced when dependencies are built.
