file(REMOVE_RECURSE
  "CMakeFiles/crp_legalizer.dir/ilp_legalizer.cpp.o"
  "CMakeFiles/crp_legalizer.dir/ilp_legalizer.cpp.o.d"
  "libcrp_legalizer.a"
  "libcrp_legalizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_legalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
