# Empty compiler generated dependencies file for crp_legalizer.
# This may be replaced when dependencies are built.
