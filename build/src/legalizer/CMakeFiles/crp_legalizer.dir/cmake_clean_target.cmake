file(REMOVE_RECURSE
  "libcrp_legalizer.a"
)
