file(REMOVE_RECURSE
  "CMakeFiles/crp_ilp.dir/model.cpp.o"
  "CMakeFiles/crp_ilp.dir/model.cpp.o.d"
  "CMakeFiles/crp_ilp.dir/simplex.cpp.o"
  "CMakeFiles/crp_ilp.dir/simplex.cpp.o.d"
  "CMakeFiles/crp_ilp.dir/solver.cpp.o"
  "CMakeFiles/crp_ilp.dir/solver.cpp.o.d"
  "libcrp_ilp.a"
  "libcrp_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
