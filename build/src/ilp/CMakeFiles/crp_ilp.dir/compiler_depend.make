# Empty compiler generated dependencies file for crp_ilp.
# This may be replaced when dependencies are built.
