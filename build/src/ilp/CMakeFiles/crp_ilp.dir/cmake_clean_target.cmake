file(REMOVE_RECURSE
  "libcrp_ilp.a"
)
