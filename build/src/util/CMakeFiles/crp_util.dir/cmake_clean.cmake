file(REMOVE_RECURSE
  "CMakeFiles/crp_util.dir/logger.cpp.o"
  "CMakeFiles/crp_util.dir/logger.cpp.o.d"
  "CMakeFiles/crp_util.dir/string_util.cpp.o"
  "CMakeFiles/crp_util.dir/string_util.cpp.o.d"
  "CMakeFiles/crp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/crp_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/crp_util.dir/timer.cpp.o"
  "CMakeFiles/crp_util.dir/timer.cpp.o.d"
  "libcrp_util.a"
  "libcrp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
