# Empty dependencies file for crp_util.
# This may be replaced when dependencies are built.
