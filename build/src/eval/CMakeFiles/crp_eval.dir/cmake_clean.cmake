file(REMOVE_RECURSE
  "CMakeFiles/crp_eval.dir/evaluator.cpp.o"
  "CMakeFiles/crp_eval.dir/evaluator.cpp.o.d"
  "libcrp_eval.a"
  "libcrp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
