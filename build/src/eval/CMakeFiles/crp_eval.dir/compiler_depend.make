# Empty compiler generated dependencies file for crp_eval.
# This may be replaced when dependencies are built.
