file(REMOVE_RECURSE
  "libcrp_groute.a"
)
