file(REMOVE_RECURSE
  "CMakeFiles/crp_groute.dir/congestion_report.cpp.o"
  "CMakeFiles/crp_groute.dir/congestion_report.cpp.o.d"
  "CMakeFiles/crp_groute.dir/global_router.cpp.o"
  "CMakeFiles/crp_groute.dir/global_router.cpp.o.d"
  "CMakeFiles/crp_groute.dir/maze_route.cpp.o"
  "CMakeFiles/crp_groute.dir/maze_route.cpp.o.d"
  "CMakeFiles/crp_groute.dir/pattern_route.cpp.o"
  "CMakeFiles/crp_groute.dir/pattern_route.cpp.o.d"
  "CMakeFiles/crp_groute.dir/route.cpp.o"
  "CMakeFiles/crp_groute.dir/route.cpp.o.d"
  "CMakeFiles/crp_groute.dir/routing_graph.cpp.o"
  "CMakeFiles/crp_groute.dir/routing_graph.cpp.o.d"
  "libcrp_groute.a"
  "libcrp_groute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_groute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
