# Empty compiler generated dependencies file for crp_groute.
# This may be replaced when dependencies are built.
