file(REMOVE_RECURSE
  "libcrp_lefdef.a"
)
