file(REMOVE_RECURSE
  "CMakeFiles/crp_lefdef.dir/def_parser.cpp.o"
  "CMakeFiles/crp_lefdef.dir/def_parser.cpp.o.d"
  "CMakeFiles/crp_lefdef.dir/def_writer.cpp.o"
  "CMakeFiles/crp_lefdef.dir/def_writer.cpp.o.d"
  "CMakeFiles/crp_lefdef.dir/guide_io.cpp.o"
  "CMakeFiles/crp_lefdef.dir/guide_io.cpp.o.d"
  "CMakeFiles/crp_lefdef.dir/lef_parser.cpp.o"
  "CMakeFiles/crp_lefdef.dir/lef_parser.cpp.o.d"
  "CMakeFiles/crp_lefdef.dir/lef_writer.cpp.o"
  "CMakeFiles/crp_lefdef.dir/lef_writer.cpp.o.d"
  "CMakeFiles/crp_lefdef.dir/tokenizer.cpp.o"
  "CMakeFiles/crp_lefdef.dir/tokenizer.cpp.o.d"
  "libcrp_lefdef.a"
  "libcrp_lefdef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_lefdef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
