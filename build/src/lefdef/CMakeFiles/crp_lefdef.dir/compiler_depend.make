# Empty compiler generated dependencies file for crp_lefdef.
# This may be replaced when dependencies are built.
