
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lefdef/def_parser.cpp" "src/lefdef/CMakeFiles/crp_lefdef.dir/def_parser.cpp.o" "gcc" "src/lefdef/CMakeFiles/crp_lefdef.dir/def_parser.cpp.o.d"
  "/root/repo/src/lefdef/def_writer.cpp" "src/lefdef/CMakeFiles/crp_lefdef.dir/def_writer.cpp.o" "gcc" "src/lefdef/CMakeFiles/crp_lefdef.dir/def_writer.cpp.o.d"
  "/root/repo/src/lefdef/guide_io.cpp" "src/lefdef/CMakeFiles/crp_lefdef.dir/guide_io.cpp.o" "gcc" "src/lefdef/CMakeFiles/crp_lefdef.dir/guide_io.cpp.o.d"
  "/root/repo/src/lefdef/lef_parser.cpp" "src/lefdef/CMakeFiles/crp_lefdef.dir/lef_parser.cpp.o" "gcc" "src/lefdef/CMakeFiles/crp_lefdef.dir/lef_parser.cpp.o.d"
  "/root/repo/src/lefdef/lef_writer.cpp" "src/lefdef/CMakeFiles/crp_lefdef.dir/lef_writer.cpp.o" "gcc" "src/lefdef/CMakeFiles/crp_lefdef.dir/lef_writer.cpp.o.d"
  "/root/repo/src/lefdef/tokenizer.cpp" "src/lefdef/CMakeFiles/crp_lefdef.dir/tokenizer.cpp.o" "gcc" "src/lefdef/CMakeFiles/crp_lefdef.dir/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/crp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/crp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
