# Empty dependencies file for crp_baseline.
# This may be replaced when dependencies are built.
