file(REMOVE_RECURSE
  "libcrp_baseline.a"
)
