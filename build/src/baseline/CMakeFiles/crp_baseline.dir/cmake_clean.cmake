file(REMOVE_RECURSE
  "CMakeFiles/crp_baseline.dir/median_ilp.cpp.o"
  "CMakeFiles/crp_baseline.dir/median_ilp.cpp.o.d"
  "libcrp_baseline.a"
  "libcrp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
