# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("db")
subdirs("lefdef")
subdirs("rsmt")
subdirs("ilp")
subdirs("groute")
subdirs("droute")
subdirs("legalizer")
subdirs("eval")
subdirs("crp")
subdirs("baseline")
subdirs("bmgen")
subdirs("dplace")
subdirs("viz")
