file(REMOVE_RECURSE
  "libcrp_rsmt.a"
)
