# Empty dependencies file for crp_rsmt.
# This may be replaced when dependencies are built.
