file(REMOVE_RECURSE
  "CMakeFiles/crp_rsmt.dir/steiner.cpp.o"
  "CMakeFiles/crp_rsmt.dir/steiner.cpp.o.d"
  "libcrp_rsmt.a"
  "libcrp_rsmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_rsmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
