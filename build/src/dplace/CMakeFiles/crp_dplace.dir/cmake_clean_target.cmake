file(REMOVE_RECURSE
  "libcrp_dplace.a"
)
