# Empty compiler generated dependencies file for crp_dplace.
# This may be replaced when dependencies are built.
