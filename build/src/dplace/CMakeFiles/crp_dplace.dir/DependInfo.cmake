
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dplace/detailed_placer.cpp" "src/dplace/CMakeFiles/crp_dplace.dir/detailed_placer.cpp.o" "gcc" "src/dplace/CMakeFiles/crp_dplace.dir/detailed_placer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/crp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/crp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
