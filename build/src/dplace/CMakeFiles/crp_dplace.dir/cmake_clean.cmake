file(REMOVE_RECURSE
  "CMakeFiles/crp_dplace.dir/detailed_placer.cpp.o"
  "CMakeFiles/crp_dplace.dir/detailed_placer.cpp.o.d"
  "libcrp_dplace.a"
  "libcrp_dplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_dplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
