# Empty dependencies file for crp_droute.
# This may be replaced when dependencies are built.
