file(REMOVE_RECURSE
  "CMakeFiles/crp_droute.dir/detailed_router.cpp.o"
  "CMakeFiles/crp_droute.dir/detailed_router.cpp.o.d"
  "CMakeFiles/crp_droute.dir/drc.cpp.o"
  "CMakeFiles/crp_droute.dir/drc.cpp.o.d"
  "CMakeFiles/crp_droute.dir/track_graph.cpp.o"
  "CMakeFiles/crp_droute.dir/track_graph.cpp.o.d"
  "libcrp_droute.a"
  "libcrp_droute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_droute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
