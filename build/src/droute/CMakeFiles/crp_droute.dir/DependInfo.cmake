
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/droute/detailed_router.cpp" "src/droute/CMakeFiles/crp_droute.dir/detailed_router.cpp.o" "gcc" "src/droute/CMakeFiles/crp_droute.dir/detailed_router.cpp.o.d"
  "/root/repo/src/droute/drc.cpp" "src/droute/CMakeFiles/crp_droute.dir/drc.cpp.o" "gcc" "src/droute/CMakeFiles/crp_droute.dir/drc.cpp.o.d"
  "/root/repo/src/droute/track_graph.cpp" "src/droute/CMakeFiles/crp_droute.dir/track_graph.cpp.o" "gcc" "src/droute/CMakeFiles/crp_droute.dir/track_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/crp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/groute/CMakeFiles/crp_groute.dir/DependInfo.cmake"
  "/root/repo/build/src/lefdef/CMakeFiles/crp_lefdef.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rsmt/CMakeFiles/crp_rsmt.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/crp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
