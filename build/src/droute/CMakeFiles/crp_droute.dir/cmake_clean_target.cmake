file(REMOVE_RECURSE
  "libcrp_droute.a"
)
