file(REMOVE_RECURSE
  "CMakeFiles/crp_bmgen.dir/generator.cpp.o"
  "CMakeFiles/crp_bmgen.dir/generator.cpp.o.d"
  "CMakeFiles/crp_bmgen.dir/suite.cpp.o"
  "CMakeFiles/crp_bmgen.dir/suite.cpp.o.d"
  "libcrp_bmgen.a"
  "libcrp_bmgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_bmgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
