
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmgen/generator.cpp" "src/bmgen/CMakeFiles/crp_bmgen.dir/generator.cpp.o" "gcc" "src/bmgen/CMakeFiles/crp_bmgen.dir/generator.cpp.o.d"
  "/root/repo/src/bmgen/suite.cpp" "src/bmgen/CMakeFiles/crp_bmgen.dir/suite.cpp.o" "gcc" "src/bmgen/CMakeFiles/crp_bmgen.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/crp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/dplace/CMakeFiles/crp_dplace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/crp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
