# Empty compiler generated dependencies file for crp_bmgen.
# This may be replaced when dependencies are built.
