file(REMOVE_RECURSE
  "libcrp_bmgen.a"
)
