// Exports the crp_test1..10 suite as LEF/DEF file pairs so external
// tools (or a real TritonRoute build) can consume the benchmarks.
//
// Usage: suite_export [outputDir] [scaleDivisor]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "bmgen/generator.hpp"
#include "bmgen/suite.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_writer.hpp"

int main(int argc, char** argv) {
  using namespace crp;

  const std::string outDir = argc > 1 ? argv[1] : "suite";
  const double scale = argc > 2 ? std::atof(argv[2]) : 40.0;
  std::filesystem::create_directories(outDir);

  for (const auto& entry : bmgen::ispdLikeSuite(scale)) {
    const auto db = bmgen::generateBenchmark(entry.spec);
    const std::string lefPath = outDir + "/" + entry.name + ".lef";
    const std::string defPath = outDir + "/" + entry.name + ".def";
    lefdef::writeLefFile(lefPath, db.tech(), db.library());
    lefdef::writeDefFile(defPath, db);
    std::cout << entry.name << ": " << db.numCells() << " cells, "
              << db.numNets() << " nets -> " << lefPath << ", " << defPath
              << "\n";
  }
  return 0;
}
