// Quickstart: the whole CR&P flow on a small synthetic design.
//
//   1. generate a benchmark (ISPD-2018-style structure)
//   2. global route (CUGR-substitute)
//   3. run CR&P iterations (the paper's add-on step)
//   4. detailed route (TritonRoute-substitute)
//   5. evaluate wirelength / vias / DRVs before vs after
//
// Usage: quickstart [numCells] [iterations]
#include <cstdlib>
#include <iostream>

#include "bmgen/generator.hpp"
#include "crp/framework.hpp"
#include "db/legality.hpp"
#include "droute/detailed_router.hpp"
#include "eval/evaluator.hpp"
#include "groute/global_router.hpp"

int main(int argc, char** argv) {
  using namespace crp;

  const int numCells = argc > 1 ? std::atoi(argv[1]) : 800;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 3;

  // 1. Generate a congested synthetic design.
  bmgen::BenchmarkSpec spec;
  spec.name = "quickstart";
  spec.targetCells = numCells;
  spec.utilization = 0.82;
  spec.hotspots = 2;
  spec.seed = 42;
  db::Database db = bmgen::generateBenchmark(spec);
  std::cout << "design: " << db.numCells() << " cells, " << db.numNets()
            << " nets, utilization "
            << static_cast<int>(db.utilization() * 100) << "%\n";

  // 2. Global route.
  groute::GlobalRouter router(db);
  const auto grStats = router.run();
  std::cout << "global route: wl=" << grStats.wirelengthDbu
            << " dbu, vias=" << grStats.vias
            << ", overflowed edges=" << grStats.overflowedEdges << "\n";

  // Detailed-route the untouched handoff for the baseline numbers.
  eval::Metrics before;
  {
    droute::DetailedRouter detailed(db, router.buildGuides());
    before = eval::collectMetrics(detailed.run());
  }

  // 3. CR&P iterations.
  core::CrpOptions options;
  options.iterations = iterations;
  core::CrpFramework framework(db, router, options);
  const auto report = framework.run();
  int moves = 0;
  for (const auto& it : report.iterations) {
    moves += it.movedCells + it.displacedCells;
  }
  std::cout << "CR&P: " << iterations << " iterations, " << moves
            << " cell moves, placement legal: "
            << (db::isPlacementLegal(db) ? "yes" : "NO") << "\n";

  // 4. Detailed route the improved handoff.
  eval::Metrics after;
  {
    droute::DetailedRouter detailed(db, router.buildGuides());
    after = eval::collectMetrics(detailed.run());
  }

  // 5. Compare.
  const auto row = eval::compareRuns(spec.name, before, after);
  std::cout << "before: wl=" << before.wirelengthDbu
            << " vias=" << before.viaCount << " drvs=" << before.totalDrvs()
            << "\n";
  std::cout << "after : wl=" << after.wirelengthDbu
            << " vias=" << after.viaCount << " drvs=" << after.totalDrvs()
            << "\n";
  std::cout << "improvement: wirelength " << row.wirelengthImprovePct
            << "%, vias " << row.viaImprovePct
            << "%, new DRVs: " << row.drvDelta << "\n";
  return 0;
}
