// File-based flow matching the paper's Fig. 1 interface: LEF + DEF in,
// routed DEF + guide file out.
//
// Usage:
//   full_flow_files                        (generates its own input pair)
//   full_flow_files in.lef in.def out.def out.guide [iterations]
#include <cstdlib>
#include <iostream>
#include <string>

#include "bmgen/generator.hpp"
#include "crp/framework.hpp"
#include "db/legality.hpp"
#include "droute/detailed_router.hpp"
#include "eval/evaluator.hpp"
#include "groute/global_router.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/guide_io.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"

int main(int argc, char** argv) {
  using namespace crp;

  std::string lefPath, defPath;
  std::string outDef = "crp_out.def";
  std::string outGuide = "crp_out.guide";
  int iterations = 3;

  if (argc >= 3) {
    lefPath = argv[1];
    defPath = argv[2];
    if (argc >= 4) outDef = argv[3];
    if (argc >= 5) outGuide = argv[4];
    if (argc >= 6) iterations = std::atoi(argv[5]);
  } else {
    // Self-contained mode: generate an input pair first.
    std::cout << "no input files given; generating demo.lef / demo.def\n";
    bmgen::BenchmarkSpec spec;
    spec.name = "demo";
    spec.targetCells = 600;
    spec.hotspots = 1;
    spec.seed = 12;
    const auto generated = bmgen::generateBenchmark(spec);
    lefdef::writeLefFile("demo.lef", generated.tech(), generated.library());
    lefdef::writeDefFile("demo.def", generated);
    lefPath = "demo.lef";
    defPath = "demo.def";
  }

  // ---- parse inputs -----------------------------------------------------------
  auto [tech, lib] = lefdef::parseLefFile(lefPath);
  db::Design design = lefdef::parseDefFile(defPath, tech, lib);
  db::Database db(std::move(tech), std::move(lib), std::move(design));
  std::cout << "loaded " << db.numCells() << " cells, " << db.numNets()
            << " nets from " << lefPath << " + " << defPath << "\n";
  if (!db::isPlacementLegal(db)) {
    std::cerr << "input placement is not legal; aborting\n";
    return 1;
  }

  // ---- flow --------------------------------------------------------------------
  groute::GlobalRouter router(db);
  router.run();
  core::CrpOptions options;
  options.iterations = iterations;
  core::CrpFramework framework(db, router, options);
  framework.run();

  droute::DetailedRouter detailed(db, router.buildGuides());
  const auto metrics = eval::collectMetrics(detailed.run());
  std::cout << "detailed route: wl=" << metrics.wirelengthDbu
            << " vias=" << metrics.viaCount << " drvs=" << metrics.totalDrvs()
            << " opens=" << metrics.openNets << "\n";

  // ---- write outputs -------------------------------------------------------------
  lefdef::writeDefFile(outDef, db);
  lefdef::writeGuidesFile(outGuide, db, router.buildGuides());
  std::cout << "wrote " << outDef << " and " << outGuide << "\n";
  return 0;
}
