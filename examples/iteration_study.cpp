// Iteration study: how solution quality evolves with the CR&P
// iteration count k (the paper evaluates k = 1 and k = 10; this
// example traces the whole trajectory, including the per-iteration
// move counts that explain why gains saturate).
//
// Usage: iteration_study [numCells] [maxK]
#include <cstdlib>
#include <iostream>

#include "bmgen/generator.hpp"
#include "crp/framework.hpp"
#include "droute/detailed_router.hpp"
#include "eval/evaluator.hpp"
#include "groute/global_router.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace crp;
  using util::padLeft;

  const int numCells = argc > 1 ? std::atoi(argv[1]) : 1000;
  const int maxK = argc > 2 ? std::atoi(argv[2]) : 10;

  bmgen::BenchmarkSpec spec;
  spec.name = "iteration_study";
  spec.targetCells = numCells;
  spec.utilization = 0.86;
  spec.hotspots = 3;
  spec.hotspotStrength = 0.55;
  spec.seed = 17;

  auto db = bmgen::generateBenchmark(spec);
  groute::GlobalRouter router(db);
  router.run();

  auto detailedMetrics = [&] {
    droute::DetailedRouter detailed(db, router.buildGuides());
    return eval::collectMetrics(detailed.run());
  };
  const eval::Metrics base = detailedMetrics();
  std::cout << "k=0 (baseline): wl=" << base.wirelengthDbu
            << " vias=" << base.viaCount << " drvs=" << base.totalDrvs()
            << "\n\n";
  std::cout << padLeft("k", 4) << padLeft("moved", 8) << padLeft("rerouted", 10)
            << padLeft("GR wl", 10) << padLeft("GR vias", 9)
            << padLeft("DR wl%", 8) << padLeft("DR vias%", 10) << "\n";

  core::CrpOptions options;
  options.iterations = 1;  // we drive iterations manually
  core::CrpFramework framework(db, router, options);
  for (int k = 1; k <= maxK; ++k) {
    const auto report = framework.runIteration();
    const auto grStats = router.stats();
    const eval::Metrics now = detailedMetrics();
    std::cout << padLeft(std::to_string(k), 4)
              << padLeft(std::to_string(report.movedCells +
                                        report.displacedCells),
                         8)
              << padLeft(std::to_string(report.reroutedNets), 10)
              << padLeft(std::to_string(grStats.wirelengthDbu), 10)
              << padLeft(std::to_string(grStats.vias), 9)
              << padLeft(util::formatDouble(
                             eval::improvementPercent(
                                 static_cast<double>(base.wirelengthDbu),
                                 static_cast<double>(now.wirelengthDbu)),
                             2),
                         8)
              << padLeft(util::formatDouble(
                             eval::improvementPercent(
                                 static_cast<double>(base.viaCount),
                                 static_cast<double>(now.viaCount)),
                             2),
                         10)
              << "\n";
  }
  std::cout << "\n(positive % = better than baseline)\n";
  return 0;
}
