// Placement refinement study: HPWL-driven detailed placement (dplace)
// vs routing-aware CR&P, and the two combined.
//
// The contrast the paper draws in §II — "most detailed placers try to
// minimize HPWL, which is not a well-correlated factor with the
// detailed routing" — made measurable: dplace reduces HPWL the most,
// CR&P reduces detailed-route vias/congestion, and running dplace
// first then CR&P gets both.
//
// Usage: placement_refinement [numCells]
#include <cstdlib>
#include <iostream>

#include "bmgen/generator.hpp"
#include "crp/framework.hpp"
#include "dplace/detailed_placer.hpp"
#include "droute/detailed_router.hpp"
#include "eval/evaluator.hpp"
#include "groute/global_router.hpp"
#include "viz/svg_writer.hpp"

namespace {

using namespace crp;

struct Outcome {
  geom::Coord hpwl;
  eval::Metrics metrics;
};

Outcome measure(db::Database& db) {
  groute::GlobalRouter router(db);
  router.run();
  droute::DetailedRouter detailed(db, router.buildGuides());
  return Outcome{db.totalHpwl(), eval::collectMetrics(detailed.run())};
}

void report(const char* label, const Outcome& o, const Outcome& base) {
  std::cout << label << ": hpwl=" << o.hpwl << " ("
            << eval::improvementPercent(static_cast<double>(base.hpwl),
                                        static_cast<double>(o.hpwl))
            << "%), DR wl=" << o.metrics.wirelengthDbu << " ("
            << eval::improvementPercent(
                   static_cast<double>(base.metrics.wirelengthDbu),
                   static_cast<double>(o.metrics.wirelengthDbu))
            << "%), vias=" << o.metrics.viaCount << " ("
            << eval::improvementPercent(
                   static_cast<double>(base.metrics.viaCount),
                   static_cast<double>(o.metrics.viaCount))
            << "%)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int numCells = argc > 1 ? std::atoi(argv[1]) : 800;

  bmgen::BenchmarkSpec spec;
  spec.name = "refinement";
  spec.targetCells = numCells;
  spec.utilization = 0.8;
  spec.hotspots = 2;
  spec.seed = 23;
  // Raw (unrefined) placement: both optimizers get the same start.

  // Baseline: route the raw placement.
  auto dbBase = bmgen::generateBenchmark(spec);
  const Outcome base = measure(dbBase);
  report("raw placement       ", base, base);

  // HPWL-only refinement.
  auto dbPlace = bmgen::generateBenchmark(spec);
  dplace::DetailedPlacer placer(dbPlace);
  const auto placerReport = placer.run();
  const Outcome placed = measure(dbPlace);
  report("dplace (HPWL)       ", placed, base);
  std::cout << "  (" << placerReport.swaps << " swaps, "
            << placerReport.relocations << " relocations, "
            << placerReport.reorders << " reorders)\n";

  // Routing-aware CR&P only.
  auto dbCrp = bmgen::generateBenchmark(spec);
  {
    groute::GlobalRouter router(dbCrp);
    router.run();
    core::CrpOptions options;
    options.iterations = 10;
    core::CrpFramework framework(dbCrp, router, options);
    framework.run();
  }
  const Outcome crp = measure(dbCrp);
  report("CR&P (routing-aware)", crp, base);

  // Combined: dplace then CR&P.
  auto dbBoth = bmgen::generateBenchmark(spec);
  {
    dplace::DetailedPlacer both(dbBoth);
    both.run();
    groute::GlobalRouter router(dbBoth);
    router.run();
    core::CrpOptions options;
    options.iterations = 10;
    core::CrpFramework framework(dbBoth, router, options);
    framework.run();
    // Write a visualization of the final state.
    viz::SvgOptions svg;
    svg.drawCongestion = true;
    viz::writeSvgFile("refinement_final.svg", dbBoth, &router, svg);
  }
  const Outcome both = measure(dbBoth);
  report("dplace + CR&P       ", both, base);
  std::cout << "\nwrote refinement_final.svg (placement + routes + "
               "congestion overlay)\n";
  return 0;
}
