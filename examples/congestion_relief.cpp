// Congestion relief study: CR&P vs the median-move baseline [18] on a
// deliberately congested design — the scenario of paper §V.B, where
// CR&P's congestion-aware cost function and criticality priority give
// it the edge.
//
// Usage: congestion_relief [numCells] [hotspots]
#include <cstdlib>
#include <iostream>

#include "baseline/median_ilp.hpp"
#include "bmgen/generator.hpp"
#include "crp/framework.hpp"
#include "droute/detailed_router.hpp"
#include "eval/evaluator.hpp"
#include "groute/global_router.hpp"

namespace {

using namespace crp;

eval::Metrics detailedMetrics(const db::Database& db,
                              groute::GlobalRouter& router) {
  droute::DetailedRouter detailed(db, router.buildGuides());
  return eval::collectMetrics(detailed.run());
}

void printRow(const char* label, const eval::Metrics& m,
              const eval::Metrics& base) {
  std::cout << label << ": wl=" << m.wirelengthDbu << " vias=" << m.viaCount
            << " drvs=" << m.totalDrvs() << "  (vs baseline: wl "
            << eval::improvementPercent(
                   static_cast<double>(base.wirelengthDbu),
                   static_cast<double>(m.wirelengthDbu))
            << "%, vias "
            << eval::improvementPercent(static_cast<double>(base.viaCount),
                                        static_cast<double>(m.viaCount))
            << "%)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int numCells = argc > 1 ? std::atoi(argv[1]) : 1200;
  const int hotspots = argc > 2 ? std::atoi(argv[2]) : 3;

  bmgen::BenchmarkSpec spec;
  spec.name = "congestion_relief";
  spec.targetCells = numCells;
  spec.utilization = 0.86;
  spec.hotspots = hotspots;
  spec.hotspotStrength = 0.6;
  spec.seed = 7;

  // ---- Baseline: GR + DR, no movement ----------------------------------------
  auto dbBase = bmgen::generateBenchmark(spec);
  groute::GlobalRouter routerBase(dbBase);
  routerBase.run();
  const auto congestion = routerBase.graph().congestionStats();
  std::cout << "congestion after GR: " << congestion.overflowedEdges
            << " overflowed edges, total overflow "
            << congestion.totalOverflow << "\n\n";
  const eval::Metrics base = detailedMetrics(dbBase, routerBase);
  printRow("baseline (GR+DR)   ", base, base);

  // ---- [18]: median-move ILP ---------------------------------------------------
  auto dbMedian = bmgen::generateBenchmark(spec);
  groute::GlobalRouter routerMedian(dbMedian);
  routerMedian.run();
  const auto medianResult =
      baseline::runMedianIlpOptimizer(dbMedian, routerMedian);
  std::cout << "[18] moved " << medianResult.movedCells << " cells\n";
  const eval::Metrics median = detailedMetrics(dbMedian, routerMedian);
  printRow("median-move ILP [18]", median, base);

  // ---- CR&P k = 10 ------------------------------------------------------------
  auto dbCrp = bmgen::generateBenchmark(spec);
  groute::GlobalRouter routerCrp(dbCrp);
  routerCrp.run();
  core::CrpOptions options;
  options.iterations = 10;
  core::CrpFramework framework(dbCrp, routerCrp, options);
  const auto report = framework.run();
  std::cout << "CR&P moved " << report.totalMoves << " cells over "
            << report.iterations.size() << " iterations\n";
  const eval::Metrics crp = detailedMetrics(dbCrp, routerCrp);
  printRow("CR&P (k=10)        ", crp, base);

  return 0;
}
