// Unit + property tests for geometry primitives.
#include <gtest/gtest.h>

#include "geom/geometry.hpp"
#include "util/rng.hpp"

namespace crp::geom {
namespace {

TEST(Point, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-2, 5}, {1, 1}), 7);
  EXPECT_EQ(manhattan({5, 5}, {5, 5}), 0);
}

TEST(Interval, BasicPredicates) {
  Interval iv{2, 6};
  EXPECT_EQ(iv.length(), 4);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(2));
  EXPECT_FALSE(iv.contains(6));
  EXPECT_TRUE(iv.overlaps({5, 9}));
  EXPECT_FALSE(iv.overlaps({6, 9}));
  EXPECT_EQ(iv.overlapLength({4, 10}), 2);
  EXPECT_EQ(iv.overlapLength({10, 12}), 0);
}

TEST(Rect, BasicMeasures) {
  Rect r{0, 0, 10, 4};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 40);
  EXPECT_EQ(r.halfPerimeter(), 14);
  EXPECT_EQ(r.center(), (Point{5, 2}));
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((Rect{3, 3, 3, 9}).empty());
}

TEST(Rect, FromPointsNormalizes) {
  const Rect r = Rect::fromPoints({7, 1}, {2, 5});
  EXPECT_EQ(r, (Rect{2, 1, 7, 5}));
}

TEST(Rect, ContainsAndOverlap) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_FALSE(r.contains(Point{10, 0}));
  EXPECT_TRUE(r.containsClosed(Point{10, 10}));
  EXPECT_TRUE(r.contains(Rect{1, 1, 9, 9}));
  EXPECT_FALSE(r.contains(Rect{1, 1, 11, 9}));
  EXPECT_TRUE(r.overlaps(Rect{9, 9, 20, 20}));
  EXPECT_FALSE(r.overlaps(Rect{10, 0, 20, 10}));  // touching, closed-open
}

TEST(Rect, IntersectAndUnion) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 5, 15, 15};
  EXPECT_EQ(a.intersect(b), (Rect{5, 5, 10, 10}));
  EXPECT_TRUE(a.intersect(Rect{20, 20, 30, 30}).empty());
  EXPECT_EQ(a.unionWith(b), (Rect{0, 0, 15, 15}));
  EXPECT_EQ(Rect{}.unionWith(b), b);
}

TEST(Rect, InflateAndShift) {
  Rect r{2, 2, 4, 4};
  EXPECT_EQ(r.inflated(1), (Rect{1, 1, 5, 5}));
  EXPECT_EQ(r.shifted(3, -2), (Rect{5, 0, 7, 2}));
}

TEST(Rect, ManhattanGap) {
  Rect a{0, 0, 2, 2};
  EXPECT_EQ(a.manhattanGap(Rect{5, 0, 7, 2}), 3);
  EXPECT_EQ(a.manhattanGap(Rect{0, 4, 2, 6}), 2);
  EXPECT_EQ(a.manhattanGap(Rect{1, 1, 3, 3}), 0);  // overlap
  EXPECT_EQ(a.manhattanGap(Rect{2, 0, 4, 2}), 0);  // touching
  EXPECT_EQ(a.manhattanGap(Rect{5, 5, 6, 6}), 3);  // diagonal: max(dx,dy)
}

TEST(Snap, SnapDown) {
  EXPECT_EQ(snapDown(17, 0, 5), 15);
  EXPECT_EQ(snapDown(15, 0, 5), 15);
  EXPECT_EQ(snapDown(17, 2, 5), 17);
  EXPECT_EQ(snapDown(-3, 0, 5), -5);
}

TEST(Snap, SnapNearest) {
  EXPECT_EQ(snapNearest(17, 0, 5), 15);
  EXPECT_EQ(snapNearest(18, 0, 5), 20);
  EXPECT_EQ(snapNearest(-3, 0, 5), -5);
}

TEST(Orientation, Names) {
  EXPECT_EQ(orientationName(Orientation::kN), "N");
  EXPECT_EQ(orientationName(Orientation::kFS), "FS");
}

TEST(Transform, NorthIsIdentityPlusTranslate) {
  const Rect local{1, 2, 3, 4};
  const Rect r = transformRect(local, Point{10, 20}, 8, 6, Orientation::kN);
  EXPECT_EQ(r, (Rect{11, 22, 13, 24}));
}

TEST(Transform, SouthRotates180) {
  const Rect local{1, 2, 3, 4};
  // w=8, h=6: x -> 8-x in [5,7], y -> 6-y in [2,4]
  const Rect r = transformRect(local, Point{0, 0}, 8, 6, Orientation::kS);
  EXPECT_EQ(r, (Rect{5, 2, 7, 4}));
}

TEST(Transform, FlippedNorthMirrorsX) {
  const Rect local{1, 2, 3, 4};
  const Rect r = transformRect(local, Point{0, 0}, 8, 6, Orientation::kFN);
  EXPECT_EQ(r, (Rect{5, 2, 7, 4}).shifted(0, 0));
  EXPECT_EQ(r.ylo, 2);
  EXPECT_EQ(r.yhi, 4);
}

TEST(Transform, FlippedSouthMirrorsY) {
  const Rect local{1, 2, 3, 4};
  const Rect r = transformRect(local, Point{0, 0}, 8, 6, Orientation::kFS);
  EXPECT_EQ(r, (Rect{1, 2, 3, 4}));
}

// Property: transforming a rect preserves its area and keeps it inside
// the instance bounding box for any orientation.
class TransformProperty : public ::testing::TestWithParam<Orientation> {};

TEST_P(TransformProperty, PreservesAreaAndContainment) {
  util::Rng rng(99);
  const Orientation orient = GetParam();
  for (int trial = 0; trial < 200; ++trial) {
    const Coord w = rng.uniformInt(4, 40);
    const Coord h = rng.uniformInt(4, 40);
    const Coord x0 = rng.uniformInt(0, w - 2);
    const Coord y0 = rng.uniformInt(0, h - 2);
    const Coord x1 = rng.uniformInt(x0 + 1, w);
    const Coord y1 = rng.uniformInt(y0 + 1, h);
    const Rect local{x0, y0, x1, y1};
    const Point origin{rng.uniformInt(-100, 100), rng.uniformInt(-100, 100)};
    const Rect placed = transformRect(local, origin, w, h, orient);
    EXPECT_EQ(placed.area(), local.area());
    const Rect instBox{origin.x, origin.y, origin.x + w, origin.y + h};
    EXPECT_TRUE(instBox.contains(placed));
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrientations, TransformProperty,
                         ::testing::Values(Orientation::kN, Orientation::kS,
                                           Orientation::kFN,
                                           Orientation::kFS));

// Property: snapNearest always lands on the lattice and never moves
// further than step/2 (+rounding).
TEST(SnapProperty, NearestIsOnLatticeAndClose) {
  util::Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    const Coord step = rng.uniformInt(1, 50);
    const Coord origin = rng.uniformInt(-100, 100);
    const Coord v = rng.uniformInt(-10000, 10000);
    const Coord snapped = snapNearest(v, origin, step);
    EXPECT_EQ((snapped - origin) % step, 0);
    EXPECT_LE(std::abs(snapped - v), (step + 1) / 2);
  }
}


TEST(TransformProperty, SouthTwiceIsIdentity) {
  util::Rng rng(314);
  for (int trial = 0; trial < 100; ++trial) {
    const Coord w = rng.uniformInt(2, 50);
    const Coord h = rng.uniformInt(2, 50);
    const Point p{rng.uniformInt(0, w), rng.uniformInt(0, h)};
    const Point once = transformPoint(p, Point{0, 0}, w, h, Orientation::kS);
    const Point twice =
        transformPoint(once, Point{0, 0}, w, h, Orientation::kS);
    EXPECT_EQ(twice, p);
  }
}

TEST(TransformProperty, FlipsAreInvolutions) {
  util::Rng rng(315);
  for (const Orientation o : {Orientation::kFN, Orientation::kFS}) {
    for (int trial = 0; trial < 100; ++trial) {
      const Coord w = rng.uniformInt(2, 50);
      const Coord h = rng.uniformInt(2, 50);
      const Point p{rng.uniformInt(0, w), rng.uniformInt(0, h)};
      const Point once = transformPoint(p, Point{0, 0}, w, h, o);
      const Point twice = transformPoint(once, Point{0, 0}, w, h, o);
      EXPECT_EQ(twice, p);
    }
  }
}

TEST(RectProperty, IntersectIsCommutativeAndContained) {
  util::Rng rng(316);
  for (int trial = 0; trial < 200; ++trial) {
    auto randRect = [&] {
      const Coord x0 = rng.uniformInt(-50, 50);
      const Coord y0 = rng.uniformInt(-50, 50);
      return Rect{x0, y0, x0 + rng.uniformInt(1, 40),
                  y0 + rng.uniformInt(1, 40)};
    };
    const Rect a = randRect();
    const Rect b = randRect();
    const Rect ab = a.intersect(b);
    const Rect ba = b.intersect(a);
    EXPECT_EQ(ab, ba);
    if (!ab.empty()) {
      EXPECT_TRUE(a.contains(ab));
      EXPECT_TRUE(b.contains(ab));
      EXPECT_TRUE(a.overlaps(b));
    } else {
      EXPECT_FALSE(a.overlaps(b));
    }
  }
}

TEST(RectProperty, UnionContainsBoth) {
  util::Rng rng(317);
  for (int trial = 0; trial < 200; ++trial) {
    auto randRect = [&] {
      const Coord x0 = rng.uniformInt(-50, 50);
      const Coord y0 = rng.uniformInt(-50, 50);
      return Rect{x0, y0, x0 + rng.uniformInt(1, 40),
                  y0 + rng.uniformInt(1, 40)};
    };
    const Rect a = randRect();
    const Rect b = randRect();
    const Rect u = a.unionWith(b);
    EXPECT_TRUE(u.contains(a));
    EXPECT_TRUE(u.contains(b));
  }
}

}  // namespace
}  // namespace crp::geom
