// Cross-module property sweeps: randomized invariants that tie the
// substrates together (demand conservation, router output validity,
// guide coverage, LP/ILP bounding, DEF idempotence).
#include <gtest/gtest.h>

#include <sstream>

#include "bmgen/generator.hpp"
#include "groute/congestion_report.hpp"
#include "groute/global_router.hpp"
#include "groute/maze_route.hpp"
#include "groute/pattern_route.hpp"
#include "eval/evaluator.hpp"
#include "ilp/solver.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "legalizer/ilp_legalizer.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace crp {
namespace {

using groute::GPoint;
using groute::NetRoute;
using groute::RouteSegment;
using groute::RoutingGraph;

// ---- demand conservation --------------------------------------------------

// Applying random routes and removing them in a different order must
// return every counter to zero (the CR&P UD phase depends on this).
TEST(PropertyDemand, ApplyRemoveConservation) {
  const auto db = crp::testing::makeTinyDatabase();
  RoutingGraph graph(db);
  util::Rng rng(404);

  std::vector<NetRoute> routes;
  for (int r = 0; r < 50; ++r) {
    NetRoute route;
    route.routed = true;
    const int layer = static_cast<int>(rng.uniformInt(0, 3));
    const bool horizontal =
        graph.layerDir(layer) == db::LayerDir::kHorizontal;
    const int x0 = static_cast<int>(rng.uniformInt(0, 8));
    const int y0 = static_cast<int>(rng.uniformInt(0, 3));
    if (horizontal) {
      route.segments.push_back(
          {GPoint{layer, x0, y0},
           GPoint{layer, static_cast<int>(rng.uniformInt(x0, 9)), y0}});
    } else {
      route.segments.push_back(
          {GPoint{layer, x0, y0},
           GPoint{layer, x0, static_cast<int>(rng.uniformInt(y0, 4))}});
    }
    // A via stack too.
    route.segments.push_back(
        {GPoint{0, x0, y0},
         GPoint{static_cast<int>(rng.uniformInt(1, 3)), x0, y0}});
    graph.applyRoute(route, +1);
    routes.push_back(std::move(route));
  }
  // Remove in shuffled order.
  for (std::size_t i = routes.size(); i > 1; --i) {
    std::swap(routes[i - 1],
              routes[static_cast<std::size_t>(rng.uniformInt(0, i - 1))]);
  }
  for (const NetRoute& route : routes) graph.applyRoute(route, -1);

  // Zero residual demand == the graph diffs clean against an empty
  // route set (every edge/node counter plus the totals, via DbAuditor's
  // demand-exactness building block).
  check::AuditReport report;
  check::auditDemandAgainstRoutes(db, graph, {}, report);
  EXPECT_CLEAN_AUDIT(report);
}

// ---- router output validity -------------------------------------------------

class RouterOutputProperty : public ::testing::TestWithParam<int> {};

TEST_P(RouterOutputProperty, PatternAndMazeAlwaysValidAndConnected) {
  const auto db = crp::testing::makeGridDatabase(14, 7);
  RoutingGraph graph(db);
  groute::PatternRouter pattern(graph);
  groute::MazeRouter maze(graph);
  util::Rng rng(700 + GetParam());
  const int numTerminals = GetParam();

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<GPoint> terminals;
    for (int t = 0; t < numTerminals; ++t) {
      terminals.push_back(GPoint{
          0, static_cast<int>(rng.uniformInt(0, graph.grid().countX() - 1)),
          static_cast<int>(rng.uniformInt(0, graph.grid().countY() - 1))});
    }
    for (const bool useMaze : {false, true}) {
      const auto result = useMaze ? maze.routeTree(terminals)
                                  : pattern.routeTree(terminals);
      ASSERT_TRUE(result.ok) << (useMaze ? "maze" : "pattern");
      NetRoute route;
      route.routed = true;
      route.segments = result.segments;
      check::AuditReport report;
      check::auditRoute(graph, route, terminals,
                        std::string(useMaze ? "maze" : "pattern") +
                            " trial " + std::to_string(trial),
                        report);
      EXPECT_CLEAN_AUDIT(report);
      EXPECT_GE(result.cost, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TerminalCounts, RouterOutputProperty,
                         ::testing::Values(2, 3, 5, 9));

// Maze routing searches a superset of the pattern shapes, so on an
// uncongested graph its cost never exceeds the pattern cost.
TEST(PropertyRouters, MazeNeverWorseThanPatternTwoPin) {
  const auto db = crp::testing::makeGridDatabase(14, 7);
  RoutingGraph graph(db);
  groute::PatternRouter pattern(graph);
  groute::MazeRouter maze(graph, /*boxMargin=*/8);
  util::Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const GPoint a{0, static_cast<int>(rng.uniformInt(0, 6)),
                   static_cast<int>(rng.uniformInt(0, 6))};
    const GPoint b{0, static_cast<int>(rng.uniformInt(0, 6)),
                   static_cast<int>(rng.uniformInt(0, 6))};
    const auto mazeResult = maze.routeTree({a, b});
    const auto patternResult = pattern.routeTwoPin(a, b);
    ASSERT_TRUE(mazeResult.ok);
    ASSERT_TRUE(patternResult.ok);
    EXPECT_LE(mazeResult.cost, patternResult.cost + 1e-6)
        << "trial " << trial;
  }
}

// ---- guide coverage -----------------------------------------------------------

// Every wire segment of every committed route must be covered by the
// net's emitted guide rects (the GR -> DR contract).
TEST(PropertyGuides, GuidesCoverCommittedRoutes) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter router(db);
  router.run();
  const auto guides = router.buildGuides();
  const auto& grid = router.graph().grid();
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    const auto& route = router.route(n);
    for (const RouteSegment& rawSeg : route.segments) {
      const RouteSegment seg = groute::normalized(rawSeg);
      // Check every gcell the segment touches.
      auto covered = [&](int layer, int x, int y) {
        const auto rect = grid.cellRect(db::GCell{x, y});
        for (const auto& g : guides[n].rects) {
          if (g.layer == layer && g.rect.contains(rect)) return true;
        }
        return false;
      };
      if (seg.isVia()) {
        for (int l = seg.a.layer; l <= seg.b.layer; ++l) {
          EXPECT_TRUE(covered(l, seg.a.x, seg.a.y)) << db.net(n).name;
        }
      } else if (seg.a.x != seg.b.x) {
        for (int x = seg.a.x; x <= seg.b.x; ++x) {
          EXPECT_TRUE(covered(seg.a.layer, x, seg.a.y)) << db.net(n).name;
        }
      } else {
        for (int y = seg.a.y; y <= seg.b.y; ++y) {
          EXPECT_TRUE(covered(seg.a.layer, seg.a.x, y)) << db.net(n).name;
        }
      }
    }
  }
}

// ---- LP bounds ------------------------------------------------------------------

// The LP relaxation is always a valid lower bound on the ILP optimum.
TEST(PropertyIlp, LpLowerBoundsIlp) {
  util::Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    ilp::Model model;
    const int n = static_cast<int>(rng.uniformInt(4, 10));
    for (int i = 0; i < n; ++i) model.addBinary(rng.uniform(-5.0, 5.0));
    for (int r = 0; r < 3; ++r) {
      ilp::LinearExpr expr;
      for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.5)) expr.add(i, rng.uniform(0.5, 2.0));
      }
      if (expr.size() == 0) continue;
      model.addConstraint(expr, ilp::Sense::kLessEqual,
                          rng.uniform(1.0, 3.0));
    }
    const auto lp = ilp::solveLp(model);
    const auto integer = ilp::solveIlp(model);
    if (lp.status == ilp::LpStatus::kOptimal &&
        integer.status == ilp::IlpStatus::kOptimal) {
      EXPECT_LE(lp.objective, integer.objective + 1e-6) << "trial " << trial;
    }
  }
}

// ---- legalizer displacement budget ---------------------------------------------

TEST(PropertyLegalizer, DisplacementBudgetRespected) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  legalizer::LegalizerOptions options;
  options.maxCellsPerIlp = 2;  // at most 1 displaced cell
  legalizer::IlpLegalizer legalizer(db, options);
  for (db::CellId cell = 0; cell < db.numCells(); cell += 5) {
    for (const auto& candidate : legalizer.generate(cell)) {
      EXPECT_LE(candidate.displaced.size(), 1u);
      EXPECT_TRUE(legalizer::candidateIsLegal(db, cell, candidate));
    }
  }
}

// ---- DEF idempotence ---------------------------------------------------------------

// write(parse(write(db))) must produce byte-identical DEF text.
TEST(PropertyLefDef, DefWriteParseWriteIdempotent) {
  bmgen::BenchmarkSpec spec;
  spec.name = "idem";
  spec.targetCells = 300;
  spec.hotspots = 1;
  spec.seed = 21;
  const auto db = bmgen::generateBenchmark(spec);

  std::ostringstream first;
  lefdef::writeDef(first, db);
  const auto design2 = lefdef::parseDef(first.str(), db.tech(), db.library());
  db::Database db2(db.tech(), db.library(), design2);
  std::ostringstream second;
  lefdef::writeDef(second, db2);
  EXPECT_EQ(first.str(), second.str());
}

// ---- congestion map ---------------------------------------------------------------

TEST(PropertyCongestion, MapReflectsAppliedDemand) {
  const auto db = crp::testing::makeTinyDatabase();
  RoutingGraph graph(db);
  const auto before = groute::buildCongestionMap(graph);
  EXPECT_EQ(before.width, 10);
  EXPECT_EQ(before.height, 5);
  EXPECT_EQ(before.hotspotCount(), 0);

  // Saturate a corridor.
  NetRoute jam;
  jam.segments.push_back({GPoint{0, 2, 2}, GPoint{0, 7, 2}});
  for (int i = 0; i < 12; ++i) graph.applyRoute(jam, +1);
  const auto after = groute::buildCongestionMap(graph, /*layer=*/0);
  EXPECT_GT(after.peak(), 1.0);
  EXPECT_GT(after.hotspotCount(), 0);
  EXPECT_GT(after.mean(), before.mean());
  EXPECT_GT(after.at(4, 2), after.at(4, 4));

  std::ostringstream art;
  groute::printHeatmap(art, after);
  // 5 rows of 10 characters.
  EXPECT_EQ(art.str().size(), 5u * 11u);
  EXPECT_NE(art.str().find('#'), std::string::npos);
}

// ---- evaluator monotonicity ----------------------------------------------------------

TEST(PropertyEval, ScoreMonotoneInEachMetric) {
  const auto db = crp::testing::makeTinyDatabase();
  util::Rng rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    eval::Metrics m;
    m.wirelengthDbu = rng.uniformInt(0, 100000);
    m.viaCount = rng.uniformInt(0, 5000);
    m.shorts = static_cast<int>(rng.uniformInt(0, 10));
    m.openNets = static_cast<int>(rng.uniformInt(0, 5));
    const double base = eval::score(m, db);
    eval::Metrics worse = m;
    switch (trial % 4) {
      case 0:
        worse.wirelengthDbu += 1000;
        break;
      case 1:
        worse.viaCount += 10;
        break;
      case 2:
        worse.shorts += 1;
        break;
      case 3:
        worse.openNets += 1;
        break;
    }
    EXPECT_GT(eval::score(worse, db), base);
  }
}

}  // namespace
}  // namespace crp
