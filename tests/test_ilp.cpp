// Tests for the LP/ILP solver: hand-checked LPs, classic integer
// instances, and a randomized brute-force equivalence sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "ilp/solver.hpp"
#include "util/rng.hpp"

namespace crp::ilp {
namespace {

// ---- Model -----------------------------------------------------------------

TEST(Model, RejectsBadBoundsAndUnknownVars) {
  Model m;
  EXPECT_THROW(m.addVariable(2.0, 1.0, 0.0, false), std::invalid_argument);
  m.addBinary(1.0);
  LinearExpr expr;
  expr.add(5, 1.0);
  EXPECT_THROW(m.addConstraint(expr, Sense::kLessEqual, 1.0),
               std::out_of_range);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  const int x = m.addBinary(1.0);
  const int y = m.addBinary(1.0);
  m.addPacking({x, y});
  EXPECT_TRUE(m.isFeasible({1.0, 0.0}));
  EXPECT_FALSE(m.isFeasible({1.0, 1.0}));
  EXPECT_FALSE(m.isFeasible({0.5, 0.0}));  // integrality
  EXPECT_FALSE(m.isFeasible({-1.0, 0.0}));
}

TEST(Model, ObjectiveValue) {
  Model m;
  m.addVariable(0, 10, 2.0, false);
  m.addVariable(0, 10, -3.0, false);
  EXPECT_DOUBLE_EQ(m.objectiveValue({4.0, 1.0}), 5.0);
}

// ---- simplex -----------------------------------------------------------------

TEST(Simplex, SolvesTextbookLp) {
  // min -3x - 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum at (2, 6), objective -36.
  Model m;
  const int x = m.addVariable(0, 100, -3.0, false);
  const int y = m.addVariable(0, 100, -5.0, false);
  LinearExpr c1;
  c1.add(x, 1.0);
  m.addConstraint(c1, Sense::kLessEqual, 4.0);
  LinearExpr c2;
  c2.add(y, 2.0);
  m.addConstraint(c2, Sense::kLessEqual, 12.0);
  LinearExpr c3;
  c3.add(x, 3.0);
  c3.add(y, 2.0);
  m.addConstraint(c3, Sense::kLessEqual, 18.0);

  const LpResult result = solveLp(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, -36.0, 1e-6);
  EXPECT_NEAR(result.x[x], 2.0, 1e-6);
  EXPECT_NEAR(result.x[y], 6.0, 1e-6);
}

TEST(Simplex, HandlesEqualityAndGreaterEqual) {
  // min x + y  s.t. x + y >= 3, x - y == 1  =>  x = 2, y = 1.
  Model m;
  const int x = m.addVariable(0, 100, 1.0, false);
  const int y = m.addVariable(0, 100, 1.0, false);
  LinearExpr ge;
  ge.add(x, 1.0);
  ge.add(y, 1.0);
  m.addConstraint(ge, Sense::kGreaterEqual, 3.0);
  LinearExpr eq;
  eq.add(x, 1.0);
  eq.add(y, -1.0);
  m.addConstraint(eq, Sense::kEqual, 1.0);

  const LpResult result = solveLp(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[x], 2.0, 1e-6);
  EXPECT_NEAR(result.x[y], 1.0, 1e-6);
  EXPECT_NEAR(result.objective, 3.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.addVariable(0, 10, 1.0, false);
  LinearExpr c;
  c.add(x, 1.0);
  m.addConstraint(c, Sense::kGreaterEqual, 20.0);
  EXPECT_EQ(solveLp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.addVariable(0, std::numeric_limits<double>::infinity(),
                              -1.0, false);
  LinearExpr c;
  c.add(x, -1.0);
  m.addConstraint(c, Sense::kLessEqual, 0.0);
  EXPECT_EQ(solveLp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  // min -x with x in [0, 7] and no constraints: x = 7.
  Model m;
  const int x = m.addVariable(0, 7, -1.0, false);
  const LpResult result = solveLp(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[x], 7.0, 1e-6);
}

TEST(Simplex, RespectsNonzeroLowerBounds) {
  // min x with x in [3, 10]: x = 3.
  Model m;
  const int x = m.addVariable(3, 10, 1.0, false);
  const LpResult result = solveLp(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[x], 3.0, 1e-6);
}

TEST(Simplex, BoundOverridesFixVariables) {
  Model m;
  const int x = m.addBinary(-5.0);
  const int y = m.addBinary(-3.0);
  m.addPacking({x, y});
  // Fix x = 0 via overrides; optimum should pick y.
  const LpResult result = solveLp(m, {0.0, 0.0}, {0.0, 1.0});
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[x], 0.0, 1e-9);
  EXPECT_NEAR(result.x[y], 1.0, 1e-6);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  const int x = m.addVariable(0, 100, -1.0, false);
  const int y = m.addVariable(0, 100, -1.0, false);
  for (int k = 1; k <= 6; ++k) {
    LinearExpr c;
    c.add(x, static_cast<double>(k));
    c.add(y, static_cast<double>(k));
    m.addConstraint(c, Sense::kLessEqual, 10.0 * k);
  }
  const LpResult result = solveLp(m);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[x] + result.x[y], 10.0, 1e-6);
}

// ---- ILP -----------------------------------------------------------------

TEST(Ilp, SolvesKnapsack) {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6  (min of negated)
  // best: a + c (17) vs b + c (20) -> b + c.
  Model m;
  const int a = m.addBinary(-10.0);
  const int b = m.addBinary(-13.0);
  const int c = m.addBinary(-7.0);
  LinearExpr w;
  w.add(a, 3.0);
  w.add(b, 4.0);
  w.add(c, 2.0);
  m.addConstraint(w, Sense::kLessEqual, 6.0);

  const IlpResult result = solveIlp(m);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, -20.0, 1e-6);
  EXPECT_NEAR(result.x[a], 0.0, 1e-9);
  EXPECT_NEAR(result.x[b], 1.0, 1e-9);
  EXPECT_NEAR(result.x[c], 1.0, 1e-9);
}

TEST(Ilp, SolvesAssignmentWithOneHots) {
  // Two cells, two positions each, position conflicts: the classic
  // shape of the paper's Eq. 12 model.
  Model m;
  const int c0p0 = m.addBinary(5.0);
  const int c0p1 = m.addBinary(1.0);
  const int c1p0 = m.addBinary(1.0);
  const int c1p1 = m.addBinary(5.0);
  m.addOneHot({c0p0, c0p1});
  m.addOneHot({c1p0, c1p1});
  // Both "cheap" choices collide on the same slot.
  m.addPacking({c0p1, c1p0});

  const IlpResult result = solveIlp(m);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 6.0, 1e-6);
  // Exactly one of the two cheap vars is chosen.
  EXPECT_NEAR(result.x[c0p1] + result.x[c1p0], 1.0, 1e-9);
}

TEST(Ilp, InfeasibleModelDetected) {
  Model m;
  const int x = m.addBinary(1.0);
  const int y = m.addBinary(1.0);
  LinearExpr c;
  c.add(x, 1.0);
  c.add(y, 1.0);
  m.addConstraint(c, Sense::kGreaterEqual, 3.0);  // impossible for binaries
  EXPECT_EQ(solveIlp(m).status, IlpStatus::kInfeasible);
}

TEST(Ilp, GeneralIntegerVariables) {
  // min -x - y st 2x + y <= 7, x + 3y <= 9, x,y integer in [0,5].
  // LP optimum fractional; integer optimum: check exhaustively = 4
  // at e.g. (3,1) or (2,2).
  Model m;
  const int x = m.addVariable(0, 5, -1.0, true);
  const int y = m.addVariable(0, 5, -1.0, true);
  LinearExpr c1;
  c1.add(x, 2.0);
  c1.add(y, 1.0);
  m.addConstraint(c1, Sense::kLessEqual, 7.0);
  LinearExpr c2;
  c2.add(x, 1.0);
  c2.add(y, 3.0);
  m.addConstraint(c2, Sense::kLessEqual, 9.0);

  const IlpResult result = solveIlp(m);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, -4.0, 1e-6);
  EXPECT_TRUE(m.isFeasible(result.x));
}

TEST(Ilp, MixedIntegerContinuous) {
  // min x + 2b st x + b >= 1.5, x continuous >= 0, b binary.
  // b=1 -> x=0.5 cost 2.5 ; b=0 -> x=1.5 cost 1.5.  Optimum 1.5.
  Model m;
  const int x = m.addVariable(0, 10, 1.0, false);
  const int b = m.addBinary(2.0);
  LinearExpr c;
  c.add(x, 1.0);
  c.add(b, 1.0);
  m.addConstraint(c, Sense::kGreaterEqual, 1.5);

  const IlpResult result = solveIlp(m);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.5, 1e-6);
  EXPECT_NEAR(result.x[b], 0.0, 1e-9);
}

// ---- randomized brute-force equivalence -------------------------------------

/// Enumerates all binary assignments and returns the best feasible
/// objective (infinity when none).
double bruteForceBest(const Model& m) {
  const int n = m.numVariables();
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(n);
    for (int i = 0; i < n; ++i) x[i] = (mask >> i) & 1;
    if (m.isFeasible(x)) best = std::min(best, m.objectiveValue(x));
  }
  return best;
}

class IlpBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(IlpBruteForce, MatchesExhaustiveEnumeration) {
  util::Rng rng(5000 + GetParam());
  const int n = GetParam();
  for (int trial = 0; trial < 30; ++trial) {
    Model m;
    for (int i = 0; i < n; ++i) {
      m.addBinary(rng.uniform(-10.0, 10.0));
    }
    // Random packing / covering / equality rows over random subsets.
    const int numRows = static_cast<int>(rng.uniformInt(1, 4));
    for (int r = 0; r < numRows; ++r) {
      LinearExpr expr;
      for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.5)) expr.add(i, rng.uniform(0.5, 3.0));
      }
      if (expr.size() == 0) expr.add(0, 1.0);
      const double kind = rng.uniform();
      if (kind < 0.4) {
        m.addConstraint(expr, Sense::kLessEqual, rng.uniform(0.5, 4.0));
      } else if (kind < 0.8) {
        m.addConstraint(expr, Sense::kGreaterEqual, rng.uniform(0.2, 2.0));
      } else {
        m.addConstraint(expr, Sense::kEqual, rng.uniform(0.5, 2.5));
      }
    }
    const double expected = bruteForceBest(m);
    const IlpResult result = solveIlp(m);
    if (std::isinf(expected)) {
      EXPECT_EQ(result.status, IlpStatus::kInfeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(result.status, IlpStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(result.objective, expected, 1e-5) << "trial " << trial;
      EXPECT_TRUE(m.isFeasible(result.x));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VarCounts, IlpBruteForce,
                         ::testing::Values(3, 5, 8, 10, 12));

// Scale smoke test shaped like the paper's legalizer ILP: 3 cells x 100
// slots with one-hot + per-slot packing rows; must solve quickly and
// exactly (each cell to its own zero-cost slot).
TEST(IlpScale, LegalizerShapedModelSolvesFast) {
  util::Rng rng(31337);
  Model m;
  const int cells = 3;
  const int slots = 100;
  std::vector<std::vector<int>> varOf(cells, std::vector<int>(slots));
  for (int c = 0; c < cells; ++c) {
    for (int s = 0; s < slots; ++s) {
      // One known zero-cost slot per cell, distinct across cells.
      const double cost = (s == c * 7) ? 0.0 : rng.uniform(1.0, 50.0);
      varOf[c][s] = m.addBinary(cost);
    }
  }
  for (int c = 0; c < cells; ++c) m.addOneHot(varOf[c]);
  for (int s = 0; s < slots; ++s) {
    m.addPacking({varOf[0][s], varOf[1][s], varOf[2][s]});
  }
  const IlpResult result = solveIlp(m);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 0.0, 1e-6);
  EXPECT_LT(result.nodesExplored, 50);
}

TEST(Ilp, NodeLimitReportsFeasibleOrAborted) {
  // A model engineered to need branching, solved with maxNodes = 1.
  util::Rng rng(777);
  Model m;
  const int n = 14;
  for (int i = 0; i < n; ++i) m.addBinary(rng.uniform(-3.0, -1.0));
  LinearExpr cap;
  for (int i = 0; i < n; ++i) cap.add(i, rng.uniform(0.9, 1.8));
  m.addConstraint(cap, Sense::kLessEqual, 3.7);
  IlpOptions options;
  options.maxNodes = 1;
  const IlpResult result = solveIlp(m, options);
  EXPECT_TRUE(result.status == IlpStatus::kFeasible ||
              result.status == IlpStatus::kAborted ||
              result.status == IlpStatus::kOptimal);
  EXPECT_LE(result.nodesExplored, 1);
}

TEST(Ilp, PureEqualitySystem) {
  // x + y == 1, y + z == 1, minimize x + 2y + 3z.
  // Solutions: (1,0,1) cost 4; (0,1,0) cost 2.  Optimum 2.
  Model m;
  const int x = m.addBinary(1.0);
  const int y = m.addBinary(2.0);
  const int z = m.addBinary(3.0);
  m.addOneHot({x, y});
  m.addOneHot({y, z});
  const IlpResult result = solveIlp(m);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-9);
  EXPECT_NEAR(result.x[y], 1.0, 1e-9);
}

TEST(Ilp, NegativeRhsNormalization) {
  // -x - y <= -1  (i.e. x + y >= 1), minimize x + y: optimum 1.
  Model m;
  const int x = m.addBinary(1.0);
  const int y = m.addBinary(1.0);
  LinearExpr expr;
  expr.add(x, -1.0);
  expr.add(y, -1.0);
  m.addConstraint(expr, Sense::kLessEqual, -1.0);
  const IlpResult result = solveIlp(m);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.0, 1e-9);
}

TEST(Ilp, ZeroVariableModel) {
  Model m;
  const IlpResult result = solveIlp(m);
  EXPECT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

TEST(Ilp, FixedVariablesFoldIntoRhs) {
  // x fixed at 1 by bounds; y free.  x + y <= 1 forces y = 0.
  Model m;
  const int x = m.addVariable(1.0, 1.0, -5.0, true);
  const int y = m.addBinary(-3.0);
  LinearExpr expr;
  expr.add(x, 1.0);
  expr.add(y, 1.0);
  m.addConstraint(expr, Sense::kLessEqual, 1.0);
  const IlpResult result = solveIlp(m);
  ASSERT_EQ(result.status, IlpStatus::kOptimal);
  EXPECT_NEAR(result.x[x], 1.0, 1e-9);
  EXPECT_NEAR(result.x[y], 0.0, 1e-9);
  EXPECT_NEAR(result.objective, -5.0, 1e-9);
}

}  // namespace
}  // namespace crp::ilp\n
