// Tests for the CR&P core: Alg. 1 labeling, Alg. 2/3 candidate
// generation and pricing, Eq. 12 selection, and the full framework
// invariants (legality after every iteration, no open nets, demand-map
// consistency).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "crp/critical_cells.hpp"
#include "crp/framework.hpp"
#include "crp/selection.hpp"
#include "db/legality.hpp"
#include "obs/obs.hpp"
#include "test_helpers.hpp"

namespace crp::core {
namespace {

using db::CellId;

struct Fixture {
  Fixture() : db(crp::testing::makeGridDatabase(10, 6)), router(db) {
    router.run();
  }
  db::Database db;
  groute::GlobalRouter router;
};

// ---- Alg. 1 -----------------------------------------------------------------

TEST(CriticalCells, CostsAreNetSums) {
  Fixture f;
  const auto costs = cellRouteCosts(f.db, f.router);
  ASSERT_EQ(costs.size(), static_cast<std::size_t>(f.db.numCells()));
  for (CellId c = 0; c < f.db.numCells(); ++c) {
    double expected = 0.0;
    for (const db::NetId n : f.db.netsOfCell(c)) {
      expected += f.router.netRouteCost(n);
    }
    EXPECT_NEAR(costs[c], expected, 1e-9);
  }
}

TEST(CriticalCells, NoConnectedPairSelected) {
  Fixture f;
  util::Rng rng(1);
  CrpOptions options;
  const auto critical = labelCriticalCells(f.db, f.router, {}, {}, rng,
                                           options);
  EXPECT_FALSE(critical.empty());
  std::unordered_set<CellId> selected(critical.begin(), critical.end());
  for (const CellId c : critical) {
    for (const CellId other : f.db.connectedCells(c)) {
      EXPECT_TRUE(selected.count(other) == 0 || other == c)
          << "connected cells " << c << " and " << other
          << " both selected";
    }
  }
}

TEST(CriticalCells, GammaBoundsSelection) {
  Fixture f;
  util::Rng rng(1);
  CrpOptions options;
  options.gamma = 0.1;
  const auto critical = labelCriticalCells(f.db, f.router, {}, {}, rng,
                                           options);
  EXPECT_LE(critical.size(),
            static_cast<std::size_t>(0.1 * f.db.numCells()) + 1);
}

TEST(CriticalCells, PrioritySelectsHighestCostFirst) {
  Fixture f;
  util::Rng rng(1);
  CrpOptions options;
  const auto costs = cellRouteCosts(f.db, f.router);
  const auto critical = labelCriticalCells(f.db, f.router, {}, {}, rng,
                                           options);
  ASSERT_FALSE(critical.empty());
  // First selected cell must be the globally most expensive one.
  const CellId top = critical.front();
  for (CellId c = 0; c < f.db.numCells(); ++c) {
    EXPECT_LE(costs[c], costs[top] + 1e-9);
  }
}

TEST(CriticalCells, HistoryDampingReducesReselection) {
  Fixture f;
  CrpOptions options;
  // With every cell in both history sets, acceptance = exp(-2) ~ 13%.
  std::unordered_set<CellId> all;
  for (CellId c = 0; c < f.db.numCells(); ++c) all.insert(c);
  int withHistory = 0;
  int withoutHistory = 0;
  for (int trial = 0; trial < 20; ++trial) {
    util::Rng rng(100 + trial);
    withHistory += static_cast<int>(
        labelCriticalCells(f.db, f.router, all, all, rng, options).size());
    util::Rng rng2(100 + trial);
    withoutHistory += static_cast<int>(
        labelCriticalCells(f.db, f.router, {}, {}, rng2, options).size());
  }
  EXPECT_LT(withHistory, withoutHistory / 2);
}

TEST(CriticalCells, DampingDisabledIgnoresHistory) {
  Fixture f;
  CrpOptions options;
  options.historyDamping = false;
  std::unordered_set<CellId> all;
  for (CellId c = 0; c < f.db.numCells(); ++c) all.insert(c);
  util::Rng rngA(7);
  util::Rng rngB(7);
  const auto withAll =
      labelCriticalCells(f.db, f.router, all, all, rngA, options);
  const auto withNone =
      labelCriticalCells(f.db, f.router, {}, {}, rngB, options);
  EXPECT_EQ(withAll.size(), withNone.size());
}

TEST(CriticalCells, FixedCellsNeverSelected) {
  Fixture f;
  f.db.mutableDesign().components[3].fixed = true;
  util::Rng rng(1);
  CrpOptions options;
  const auto critical = labelCriticalCells(f.db, f.router, {}, {}, rng,
                                           options);
  EXPECT_EQ(std::count(critical.begin(), critical.end(), 3), 0);
}

// ---- Alg. 2 / Alg. 3 ---------------------------------------------------------

TEST(CandidateGeneration, FirstCandidateIsCurrentPosition) {
  Fixture f;
  const legalizer::IlpLegalizer legalizer(f.db);
  const auto result =
      generateCandidates(f.db, f.router, legalizer, {0, 5, 11}, nullptr);
  ASSERT_EQ(result.size(), 3u);
  for (const auto& cc : result) {
    ASSERT_FALSE(cc.candidates.empty());
    EXPECT_TRUE(cc.candidates.front().isCurrent);
    EXPECT_EQ(cc.candidates.front().position, f.db.cell(cc.cell).pos);
  }
}

TEST(CandidateGeneration, PricesAreFiniteAndPositive) {
  Fixture f;
  const legalizer::IlpLegalizer legalizer(f.db);
  const auto result =
      generateCandidates(f.db, f.router, legalizer, {2, 7}, nullptr);
  for (const auto& cc : result) {
    for (const auto& candidate : cc.candidates) {
      EXPECT_GT(candidate.routeCost, 0.0);
      EXPECT_TRUE(std::isfinite(candidate.routeCost));
    }
  }
}

TEST(CandidateGeneration, ParallelMatchesSequential) {
  Fixture f;
  const legalizer::IlpLegalizer legalizer(f.db);
  const std::vector<CellId> critical{1, 4, 9, 16};
  util::ThreadPool pool(4);
  const auto seq =
      generateCandidates(f.db, f.router, legalizer, critical, nullptr);
  const auto par =
      generateCandidates(f.db, f.router, legalizer, critical, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].candidates.size(), par[i].candidates.size());
    for (std::size_t k = 0; k < seq[i].candidates.size(); ++k) {
      EXPECT_EQ(seq[i].candidates[k].position, par[i].candidates[k].position);
      EXPECT_DOUBLE_EQ(seq[i].candidates[k].routeCost,
                       par[i].candidates[k].routeCost);
    }
  }
}

TEST(CandidateGeneration, TerminalOverridesMovePins) {
  Fixture f;
  const db::NetId net = 0;
  const auto base =
      terminalsWithOverrides(f.db, f.router.graph(), net, {});
  EXPECT_EQ(base, f.router.netTerminals(net));
  // Move the first cell of the net far away; terminals must change.
  const CellId cell = f.db.cellsOfNet(net).front();
  std::unordered_map<CellId, geom::Point> overrides{
      {cell, geom::Point{f.db.design().dieArea.xhi - 100,
                         f.db.design().dieArea.yhi - 100}}};
  const auto moved =
      terminalsWithOverrides(f.db, f.router.graph(), net, overrides);
  EXPECT_NE(base, moved);
}

// ---- Eq. 12 selection ----------------------------------------------------------

TEST(Selection, PicksCheapestWhenIndependent) {
  Fixture f;
  std::vector<CellCandidates> cells(2);
  cells[0].cell = 0;
  cells[0].candidates.push_back(
      Candidate{f.db.cell(0).pos, {}, 10.0, true});
  cells[0].candidates.push_back(
      Candidate{geom::Point{0, 100}, {}, 5.0, false});
  cells[1].cell = 30;
  cells[1].candidates.push_back(
      Candidate{f.db.cell(30).pos, {}, 7.0, true});
  cells[1].candidates.push_back(
      Candidate{geom::Point{200, 500}, {}, 9.0, false});
  const auto result = selectCandidates(f.db, cells);
  EXPECT_EQ(result.chosen[0], 1);
  EXPECT_EQ(result.chosen[1], 0);
  EXPECT_NEAR(result.totalCost, 12.0, 1e-9);
}

TEST(Selection, ConflictingTargetsNotBothChosen) {
  Fixture f;
  // Two cells both want the same target rect; their costs make both
  // moves attractive, but the packing constraint allows only one.
  const geom::Point target{400, 300};
  std::vector<CellCandidates> cells(2);
  cells[0].cell = 0;
  cells[0].candidates.push_back(
      Candidate{f.db.cell(0).pos, {}, 100.0, true});
  cells[0].candidates.push_back(Candidate{target, {}, 1.0, false});
  cells[1].cell = 1;
  cells[1].candidates.push_back(
      Candidate{f.db.cell(1).pos, {}, 100.0, true});
  cells[1].candidates.push_back(Candidate{target, {}, 2.0, false});
  const auto result = selectCandidates(f.db, cells);
  const bool bothMoved = result.chosen[0] == 1 && result.chosen[1] == 1;
  EXPECT_FALSE(bothMoved);
  // Optimal: cell 0 takes the slot (1.0), cell 1 stays (100.0).
  EXPECT_EQ(result.chosen[0], 1);
  EXPECT_EQ(result.chosen[1], 0);
  EXPECT_GE(result.conflictPairs, 1);
  EXPECT_GE(result.ilpComponents, 1);
}

TEST(Selection, SharedDisplacedCellConflicts) {
  Fixture f;
  std::vector<CellCandidates> cells(2);
  const CellId sharedCell = 20;
  cells[0].cell = 0;
  cells[0].candidates.push_back(
      Candidate{f.db.cell(0).pos, {}, 10.0, true});
  cells[0].candidates.push_back(Candidate{
      geom::Point{0, 100}, {{sharedCell, geom::Point{40, 100}}}, 1.0,
      false});
  cells[1].cell = 1;
  cells[1].candidates.push_back(
      Candidate{f.db.cell(1).pos, {}, 10.0, true});
  cells[1].candidates.push_back(Candidate{
      geom::Point{800, 100}, {{sharedCell, geom::Point{880, 100}}}, 1.0,
      false});
  const auto result = selectCandidates(f.db, cells);
  const bool bothMoved = result.chosen[0] == 1 && result.chosen[1] == 1;
  EXPECT_FALSE(bothMoved);
}

TEST(Selection, EmptyInput) {
  Fixture f;
  const auto result = selectCandidates(f.db, {});
  EXPECT_TRUE(result.chosen.empty());
  EXPECT_EQ(result.totalCost, 0.0);
}


TEST(Selection, OversizedComponentFallsBackToGreedy) {
  Fixture f;
  // Build a long chain of mutually conflicting candidates: every cell
  // wants the same corridor, forcing one big component.
  const int n = 20;
  std::vector<CellCandidates> cells(n);
  for (int i = 0; i < n; ++i) {
    cells[i].cell = i;
    cells[i].candidates.push_back(
        Candidate{f.db.cell(i).pos, {}, 10.0, true});
    // Overlapping targets chain the component together.
    cells[i].candidates.push_back(Candidate{
        geom::Point{100 + 20 * i, 100}, {}, 1.0 + 0.01 * i, false});
    cells[i].candidates.push_back(Candidate{
        geom::Point{100 + 20 * i + 10, 100}, {}, 2.0, false});
  }
  SelectionOptions options;
  options.maxIlpComponentCells = 4;
  const auto result = selectCandidates(f.db, cells, options);
  EXPECT_GE(result.greedyComponents, 1);
  // Feasibility: chosen non-stay candidates must be pairwise compatible
  // (no two overlapping target footprints selected).
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto& ci = cells[i].candidates[result.chosen[i]];
      const auto& cj = cells[j].candidates[result.chosen[j]];
      if (ci.isCurrent || cj.isCurrent) continue;
      const auto& mi = f.db.macroOf(cells[i].cell);
      const auto& mj = f.db.macroOf(cells[j].cell);
      const geom::Rect ri{ci.position.x, ci.position.y,
                          ci.position.x + mi.width,
                          ci.position.y + mi.height};
      const geom::Rect rj{cj.position.x, cj.position.y,
                          cj.position.x + mj.width,
                          cj.position.y + mj.height};
      EXPECT_FALSE(ri.overlaps(rj)) << i << " vs " << j;
    }
  }
}

TEST(Selection, GreedyStillImprovesOverAllStay) {
  Fixture f;
  const int n = 16;
  std::vector<CellCandidates> cells(n);
  double stayTotal = 0.0;
  for (int i = 0; i < n; ++i) {
    cells[i].cell = i;
    cells[i].candidates.push_back(
        Candidate{f.db.cell(i).pos, {}, 10.0, true});
    cells[i].candidates.push_back(Candidate{
        geom::Point{100 + 20 * i, 100}, {}, 1.0, false});
    stayTotal += 10.0;
  }
  SelectionOptions options;
  options.maxIlpComponentCells = 2;
  const auto result = selectCandidates(f.db, cells, options);
  EXPECT_LT(result.totalCost, stayTotal);
}

// ---- framework invariants --------------------------------------------------------

TEST(Framework, IterationKeepsPlacementLegal) {
  Fixture f;
  ASSERT_TRUE(db::isPlacementLegal(f.db));
  CrpOptions options;
  options.iterations = 3;
  options.seed = 7;
  CrpFramework framework(f.db, f.router, options);
  for (int k = 0; k < 3; ++k) {
    framework.runIteration();
    EXPECT_TRUE(db::isPlacementLegal(f.db)) << "iteration " << k;
  }
}

TEST(Framework, NoOpenNetsAfterIterations) {
  Fixture f;
  CrpOptions options;
  options.iterations = 2;
  CrpFramework framework(f.db, f.router, options);
  framework.run();
  EXPECT_EQ(f.router.stats().openNets, 0);
  for (db::NetId n = 0; n < f.db.numNets(); ++n) {
    const auto terminals = f.router.netTerminals(n);
    if (terminals.size() < 2) continue;
    EXPECT_TRUE(routeConnectsTerminals(f.router.route(n), terminals))
        << f.db.net(n).name;
  }
}

TEST(Framework, DemandMapsStayConsistent) {
  // After iterations, ripping everything up must return demand to zero:
  // no leaked or double-counted demand from the UD phase.
  Fixture f;
  CrpOptions options;
  options.iterations = 2;
  CrpFramework framework(f.db, f.router, options);
  framework.run();
  for (db::NetId n = 0; n < f.db.numNets(); ++n) f.router.ripUp(n);
  EXPECT_EQ(f.router.graph().totalWireDbu(), 0);
  EXPECT_EQ(f.router.graph().totalVias(), 0);
}

TEST(Framework, ReportCountsAreConsistent) {
  Fixture f;
  CrpOptions options;
  options.iterations = 2;
  CrpFramework framework(f.db, f.router, options);
  const CrpReport report = framework.run();
  ASSERT_EQ(report.iterations.size(), 2u);
  int moves = 0;
  for (const auto& iteration : report.iterations) {
    EXPECT_GE(iteration.criticalCells, 0);
    EXPECT_LE(iteration.movedCells, iteration.criticalCells);
    moves += iteration.movedCells + iteration.displacedCells;
  }
  EXPECT_EQ(report.totalMoves, moves);
  EXPECT_EQ(framework.movedSet().empty(), report.totalMoves == 0);
}

TEST(Framework, RunReportCoversAllPhases) {
  Fixture f;
  CrpOptions options;
  CrpFramework framework(f.db, f.router, options);
  framework.runIteration();
  const auto& report = framework.runReport();
  ASSERT_EQ(report.phases.size(), static_cast<std::size_t>(kNumPhases));
  for (int i = 0; i < kNumPhases; ++i) {
    EXPECT_EQ(report.phases[i].name, kPhases[i]);
    EXPECT_GE(report.phases[i].seconds, 0.0);
  }
  ASSERT_EQ(report.iterationStats.size(), 1u);
  EXPECT_EQ(report.iterations, 1);
}

TEST(Framework, DeterministicForFixedSeed) {
  auto run = [] {
    auto db = crp::testing::makeGridDatabase(10, 6);
    groute::GlobalRouter router(db);
    router.run();
    CrpOptions options;
    options.iterations = 2;
    options.seed = 42;
    options.threads = 1;
    CrpFramework framework(db, router, options);
    framework.run();
    std::vector<geom::Point> positions;
    for (db::CellId c = 0; c < db.numCells(); ++c) {
      positions.push_back(db.cell(c).pos);
    }
    return positions;
  };
  EXPECT_EQ(run(), run());
}

TEST(Framework, ImprovesOrMaintainsEstimatedCost) {
  // The selection never picks a candidate set more expensive than
  // all-stay, so the committed route cost after UD should not blow up.
  Fixture f;
  double before = 0.0;
  for (db::NetId n = 0; n < f.db.numNets(); ++n) {
    before += f.router.netRouteCost(n);
  }
  CrpOptions options;
  options.iterations = 1;
  CrpFramework framework(f.db, f.router, options);
  framework.runIteration();
  double after = 0.0;
  for (db::NetId n = 0; n < f.db.numNets(); ++n) {
    after += f.router.netRouteCost(n);
  }
  // Allow slack: committed maze/pattern routes can differ from the
  // pattern estimate, but a catastrophic regression indicates a bug.
  EXPECT_LT(after, before * 1.25);
}

TEST(Framework, MoveBudgetEnforced) {
  Fixture f;
  CrpOptions options;
  options.iterations = 5;
  options.maxMovesTotal = 3;
  CrpFramework framework(f.db, f.router, options);
  const CrpReport report = framework.run();
  EXPECT_LE(report.totalMoves, 3);
  EXPECT_TRUE(db::isPlacementLegal(f.db));
}

// ---- UD commit plan ---------------------------------------------------------

TEST(CommitPlan, GainRankUsesCurrentEntryNotFront) {
  // Candidate lists make no ordering promise: here the move candidate
  // sits in front and the isCurrent entry second.  Judged by front()
  // both cells would tie at gain 0 and cell 0 would win the budget slot;
  // the true gains are 2 (cell 0) vs 11 (cell 1).
  std::vector<CellCandidates> cells(2);
  cells[0].cell = 0;
  cells[0].candidates = {Candidate{{100, 0}, {}, 8.0, false},
                         Candidate{{0, 0}, {}, 10.0, true}};
  cells[1].cell = 1;
  cells[1].candidates = {Candidate{{200, 0}, {}, 9.0, false},
                         Candidate{{40, 0}, {}, 20.0, true}};
  const std::vector<int> chosen{0, 0};

  const CommitPlan plan = planMoveCommits(cells, chosen, /*budget=*/1);
  ASSERT_EQ(plan.committed.size(), 1u);
  EXPECT_EQ(plan.committed[0], 1u);
  EXPECT_EQ(plan.budgetSkips, 1);
  EXPECT_EQ(plan.conflictSkips, 0);
  EXPECT_EQ(plan.movesNeeded, 1);
}

TEST(CommitPlan, SharedDisplacedCellCommitsOnlyBest) {
  // Both moves displace cell 7 — committing both would move it twice,
  // the second time from a stale position.  Only the higher-gain move
  // may commit.
  std::vector<CellCandidates> cells(2);
  cells[0].cell = 0;
  cells[0].candidates = {Candidate{{0, 0}, {}, 10.0, true},
                         Candidate{{100, 0}, {{7, {300, 0}}}, 4.0, false}};
  cells[1].cell = 1;
  cells[1].candidates = {Candidate{{40, 0}, {}, 10.0, true},
                         Candidate{{200, 0}, {{7, {320, 0}}}, 8.0, false}};
  const std::vector<int> chosen{1, 1};

  const CommitPlan plan =
      planMoveCommits(cells, chosen, std::numeric_limits<int>::max());
  ASSERT_EQ(plan.committed.size(), 1u);
  EXPECT_EQ(plan.committed[0], 0u);  // gain 6 beats gain 2
  EXPECT_EQ(plan.conflictSkips, 1);
  EXPECT_EQ(plan.movesNeeded, 2);  // cell 0 plus displaced cell 7
}

TEST(CommitPlan, SameTargetSiteCommitsOnlyBest) {
  // Both moves land on site (100, 0): stacking two cells on one site
  // would corrupt legality.  Only the higher-gain move may commit.
  std::vector<CellCandidates> cells(2);
  cells[0].cell = 0;
  cells[0].candidates = {Candidate{{0, 0}, {}, 10.0, true},
                         Candidate{{100, 0}, {}, 4.0, false}};
  cells[1].cell = 1;
  cells[1].candidates = {Candidate{{40, 0}, {}, 10.0, true},
                         Candidate{{100, 0}, {}, 8.0, false}};
  const std::vector<int> chosen{1, 1};

  const CommitPlan plan =
      planMoveCommits(cells, chosen, std::numeric_limits<int>::max());
  ASSERT_EQ(plan.committed.size(), 1u);
  EXPECT_EQ(plan.committed[0], 0u);
  EXPECT_EQ(plan.conflictSkips, 1);
}

TEST(CommitPlan, CurrentSelectionsNeverCommitted) {
  std::vector<CellCandidates> cells(1);
  cells[0].cell = 0;
  cells[0].candidates = {Candidate{{0, 0}, {}, 10.0, true},
                         Candidate{{100, 0}, {}, 4.0, false}};
  const CommitPlan plan = planMoveCommits(cells, {0},
                                          std::numeric_limits<int>::max());
  EXPECT_TRUE(plan.committed.empty());
  EXPECT_EQ(plan.movesNeeded, 0);
}

TEST(Framework, MoveBudgetCarriesOverAcrossIterations) {
  // Precondition: without a budget this flow makes more than 4 moves,
  // otherwise the capped assertion below would be vacuous.
  {
    Fixture f;
    CrpOptions options;
    options.iterations = 4;
    options.seed = 3;
    CrpFramework framework(f.db, f.router, options);
    ASSERT_GT(framework.run().totalMoves, 4);
  }
  // The budget is a *total* across iterations, not per-iteration: the
  // running sum must respect it at every step.
  Fixture f;
  CrpOptions options;
  options.iterations = 4;
  options.seed = 3;
  options.maxMovesTotal = 4;
  CrpFramework framework(f.db, f.router, options);
  int cumulative = 0;
  for (int k = 0; k < options.iterations; ++k) {
    const IterationReport report = framework.runIteration();
    cumulative += report.movedCells + report.displacedCells;
    EXPECT_LE(cumulative, options.maxMovesTotal) << "iteration " << k;
  }
  EXPECT_LE(cumulative, 4);
  EXPECT_TRUE(db::isPlacementLegal(f.db));
}

// ---- spatial observability tier ---------------------------------------------

#ifndef CRP_OBS_DISABLED
TEST(FrameworkSpatial, SnapshotsBracketEveryIteration) {
  obs::EnabledScope enabled(true);
  obs::resetAll();
  Fixture f;
  CrpOptions options;
  options.iterations = 3;
  options.snapshots = true;
  CrpFramework framework(f.db, f.router, options);
  framework.run();

  // k+1 snapshots: one post-GR baseline plus one per iteration, and a
  // k-entry timeline between them.
  const obs::HeatmapSeries& series = framework.heatmaps();
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series.snapshot(0).label, "post-gr");
  EXPECT_EQ(series.snapshot(0).iteration, -1);
  EXPECT_EQ(series.snapshot(3).label, "iter2");

  const obs::RunReport& report = framework.runReport();
  ASSERT_EQ(report.timeline.size(), 3u);
  for (std::size_t i = 0; i < report.timeline.size(); ++i) {
    const obs::TimelineRecord& record = report.timeline[i];
    EXPECT_EQ(record.iteration, static_cast<int>(i));
    // Each record's overflow bracket matches the bracketing snapshots.
    EXPECT_DOUBLE_EQ(record.overflowBefore,
                     series.snapshot(i).totalOverflow);
    EXPECT_DOUBLE_EQ(record.overflowAfter,
                     series.snapshot(i + 1).totalOverflow);
    EXPECT_EQ(record.overflowedEdgesAfter,
              series.snapshot(i + 1).overflowedEdges);
    EXPECT_GE(record.criticalCells, 0);
    EXPECT_GE(record.totalDisplacementDbu, record.maxDisplacementDbu);
  }
  obs::resetAll();
}

TEST(FrameworkSpatial, TimelineOverflowMatchesAuditedDemand) {
  obs::EnabledScope enabled(true);
  obs::resetAll();
  Fixture f;
  CrpOptions options;
  options.iterations = 2;
  options.snapshots = true;
  // Phase-boundary audits prove the incremental demand maps equal a
  // from-scratch recompute after every UD commit; the timeline's
  // overflow-after therefore equals the audited ground truth, not just
  // the live incremental counters.
  options.auditLevel = check::AuditLevel::kPhaseBoundary;
  CrpFramework framework(f.db, f.router, options);
  framework.run();  // throws AuditError if the demand maps drifted

  const auto stats = f.router.graph().congestionStats();
  const obs::RunReport& report = framework.runReport();
  ASSERT_FALSE(report.timeline.empty());
  EXPECT_DOUBLE_EQ(report.timeline.back().overflowAfter,
                   stats.totalOverflow);
  EXPECT_EQ(report.timeline.back().overflowedEdgesAfter,
            stats.overflowedEdges);
  EXPECT_DOUBLE_EQ(framework.heatmaps().latest().totalOverflow,
                   stats.totalOverflow);
  obs::resetAll();
}

TEST(FrameworkSpatial, SnapshotsOffLeavesReportAndRecorderUntouched) {
  obs::EnabledScope enabled(true);
  obs::resetAll();
  Fixture f;
  CrpOptions options;
  options.iterations = 1;
  CrpFramework framework(f.db, f.router, options);  // snapshots default off
  framework.run();
  EXPECT_TRUE(framework.heatmaps().empty());
  EXPECT_TRUE(framework.runReport().timeline.empty());
  EXPECT_EQ(framework.runReport().toJson().find("timeline"), nullptr);
  obs::resetAll();
}
#endif  // CRP_OBS_DISABLED

TEST(Framework, ZeroMoveBudgetFreezesPlacement) {
  Fixture f;
  std::vector<geom::Point> before;
  for (CellId c = 0; c < f.db.numCells(); ++c) {
    before.push_back(f.db.cell(c).pos);
  }
  CrpOptions options;
  options.iterations = 2;
  options.maxMovesTotal = 0;
  CrpFramework framework(f.db, f.router, options);
  const CrpReport report = framework.run();
  EXPECT_EQ(report.totalMoves, 0);
  for (CellId c = 0; c < f.db.numCells(); ++c) {
    EXPECT_EQ(f.db.cell(c).pos, before[c]);
  }
}

}  // namespace
}  // namespace crp::core

