// Tests for the Steiner tree builder, including the exact-small cases
// with hand-computed optima and randomized property sweeps.
#include <gtest/gtest.h>

#include <vector>

#include "rsmt/steiner.hpp"
#include "util/rng.hpp"

namespace crp::rsmt {
namespace {

std::vector<Point> pts(std::initializer_list<Point> list) { return list; }

TEST(Rsmt, SinglePin) {
  const auto tree = buildSteinerTree(pts({{5, 5}}));
  EXPECT_EQ(tree.numPins, 1);
  EXPECT_TRUE(tree.edges.empty());
  EXPECT_EQ(tree.length(), 0);
  EXPECT_TRUE(tree.isConnected());
}

TEST(Rsmt, TwoPinsIsManhattanSegment) {
  const auto tree = buildSteinerTree(pts({{0, 0}, {30, 40}}));
  EXPECT_EQ(tree.length(), 70);
  EXPECT_EQ(tree.edges.size(), 1u);
  EXPECT_TRUE(tree.isConnected());
}

TEST(Rsmt, DuplicatePinsMerged) {
  const auto tree = buildSteinerTree(pts({{0, 0}, {0, 0}, {10, 0}}));
  EXPECT_EQ(tree.numPins, 2);
  EXPECT_EQ(tree.length(), 10);
}

TEST(Rsmt, ThreePinLShape) {
  // Collinear-corner case: the median point (10, 0) joins all three.
  const auto tree = buildSteinerTree(pts({{0, 0}, {20, 0}, {10, 15}}));
  // Optimal: trunk 0..20 on y=0 (20) + stub up 15 = 35.
  EXPECT_EQ(tree.length(), 35);
  EXPECT_TRUE(tree.isConnected());
}

TEST(Rsmt, FourPinCrossUsesSteinerPoint) {
  // Pins at the four arms of a cross; MST costs 3 * 20 = 60, RSMT with
  // a center Steiner point costs 4 * 10 = 40.
  const auto tree = buildSteinerTree(
      pts({{0, 10}, {20, 10}, {10, 0}, {10, 20}}));
  EXPECT_EQ(tree.length(), 40);
  EXPECT_TRUE(tree.isConnected());
}

TEST(Rsmt, FourPinSquare) {
  // Unit square corners (scaled): perimeter-1 tree = 3 sides = 30;
  // RSMT = 30 as well (no Steiner point helps a square).
  const auto tree = buildSteinerTree(
      pts({{0, 0}, {10, 0}, {0, 10}, {10, 10}}));
  EXPECT_EQ(tree.length(), 30);
}

TEST(Rsmt, MstMatchesKnownValue) {
  const auto mst = buildMst(pts({{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  EXPECT_EQ(mst.length(), 30);
  EXPECT_TRUE(mst.isConnected());
}

TEST(Rsmt, SegmentsMatchEdges) {
  const auto tree = buildSteinerTree(pts({{0, 0}, {5, 5}, {9, 0}}));
  const auto segs = tree.segments();
  EXPECT_EQ(segs.size(), tree.edges.size());
  Coord total = 0;
  for (const auto& [a, b] : segs) total += geom::manhattan(a, b);
  EXPECT_EQ(total, tree.length());
}

TEST(Rsmt, PinHpwl) {
  EXPECT_EQ(pinHpwl(pts({{0, 0}, {30, 40}})), 70);
  EXPECT_EQ(pinHpwl(pts({{5, 5}})), 0);
  EXPECT_EQ(pinHpwl(pts({{0, 0}, {10, 0}, {5, 20}})), 30);
}

// Property sweep: for random pin sets of each size,
//   HPWL <= RSMT length <= MST length,
// the tree is connected, spans every pin, and Steiner nodes (if any)
// have degree >= 2 after construction.
class RsmtProperty : public ::testing::TestWithParam<int> {};

TEST_P(RsmtProperty, BoundsAndConnectivity) {
  const int numPins = GetParam();
  util::Rng rng(1000 + numPins);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Point> pins;
    pins.reserve(numPins);
    for (int i = 0; i < numPins; ++i) {
      pins.push_back(Point{rng.uniformInt(0, 1000), rng.uniformInt(0, 1000)});
    }
    const auto tree = buildSteinerTree(pins);
    const auto mst = buildMst(pins);
    EXPECT_TRUE(tree.isConnected());
    EXPECT_GE(tree.length(), pinHpwl(pins));
    EXPECT_LE(tree.length(), mst.length());
    // Every distinct pin appears among the first numPins nodes.
    for (const Point& p : pins) {
      bool found = false;
      for (int i = 0; i < tree.numPins; ++i) {
        if (tree.nodes[i] == p) found = true;
      }
      EXPECT_TRUE(found);
    }
    // Steiner nodes must be useful (degree >= 2, else they only add
    // length).  Exception: none expected at all for 2 pins.
    std::vector<int> degree(tree.nodes.size(), 0);
    for (const auto& [a, b] : tree.edges) {
      ++degree[a];
      ++degree[b];
    }
    for (std::size_t v = tree.numPins; v < tree.nodes.size(); ++v) {
      EXPECT_GE(degree[v], 2) << "dangling Steiner node";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PinCounts, RsmtProperty,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 20, 35));

// For 3 pins the optimum is known in closed form: the median point
// construction gives sum of distances from the component-wise median.
TEST(RsmtProperty, ThreePinClosedForm) {
  util::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Point> pins;
    for (int i = 0; i < 3; ++i) {
      pins.push_back(Point{rng.uniformInt(0, 500), rng.uniformInt(0, 500)});
    }
    std::vector<Coord> xs{pins[0].x, pins[1].x, pins[2].x};
    std::vector<Coord> ys{pins[0].y, pins[1].y, pins[2].y};
    std::sort(xs.begin(), xs.end());
    std::sort(ys.begin(), ys.end());
    const Point median{xs[1], ys[1]};
    Coord expected = 0;
    for (const Point& p : pins) expected += geom::manhattan(p, median);
    EXPECT_EQ(buildSteinerTree(pins).length(), expected);
  }
}

// The 4-pin exact search must never lose to the 5-pin heuristic run on
// the same instance (sanity cross-check of the two code paths).
TEST(RsmtProperty, ExactBeatsHeuristicOnFourPins) {
  util::Rng rng(88);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Point> pins;
    for (int i = 0; i < 4; ++i) {
      pins.push_back(Point{rng.uniformInt(0, 300), rng.uniformInt(0, 300)});
    }
    const auto exact = buildSteinerTree(pins);
    // Force the heuristic path by duplicating a pin (5 inputs, 4 unique
    // is still exact) — instead run MST + compare.
    const auto mst = buildMst(pins);
    EXPECT_LE(exact.length(), mst.length());
  }
}

}  // namespace
}  // namespace crp::rsmt
