// Tests for the detailed router: track graph geometry, guide-driven
// routing, negotiation, DRC reporting and end-to-end GR->DR handoff.
#include <gtest/gtest.h>

#include "droute/detailed_router.hpp"
#include "droute/drc.hpp"
#include "droute/track_graph.hpp"
#include "groute/global_router.hpp"
#include "test_helpers.hpp"

namespace crp::droute {
namespace {

// ---- TrackGraph -----------------------------------------------------------

class TrackGraphTest : public ::testing::Test {
 protected:
  TrackGraphTest() : db_(crp::testing::makeTinyDatabase()), graph_(db_) {}
  db::Database db_;
  TrackGraph graph_;
};

TEST_F(TrackGraphTest, GridFromTracks) {
  // Tiny db: pitch 20, offset 10.  Die 1000 wide -> 50 vertical tracks;
  // 500 tall -> 25 horizontal tracks.
  EXPECT_EQ(graph_.numLayers(), 4);
  EXPECT_EQ(graph_.numX(), 50);
  EXPECT_EQ(graph_.numY(), 25);
  EXPECT_EQ(graph_.xs().front(), 10);
  EXPECT_EQ(graph_.ys().front(), 10);
}

TEST_F(TrackGraphTest, IndexRoundTrip) {
  for (const DNode node : {DNode{0, 0, 0}, DNode{2, 13, 7}, DNode{3, 49, 24}}) {
    EXPECT_EQ(graph_.nodeOf(graph_.index(node)), node);
  }
}

TEST_F(TrackGraphTest, NearestNodeSnapsToTracks) {
  const DNode node = graph_.nearestNode(1, geom::Point{104, 97});
  const geom::Point p = graph_.position(node);
  EXPECT_EQ(p.x % 20, 10);
  EXPECT_EQ(p.y % 20, 10);
  EXPECT_LE(std::abs(p.x - 104), 10);
  EXPECT_LE(std::abs(p.y - 97), 10);
}

TEST_F(TrackGraphTest, StepLengthAtBoundary) {
  EXPECT_EQ(graph_.stepLength(DNode{0, 0, 0}, -1), 0);  // H layer, xi=0
  EXPECT_EQ(graph_.stepLength(DNode{0, 0, 0}, +1), 20);
  EXPECT_EQ(graph_.stepLength(DNode{1, 0, 24}, +1), 0);  // V layer, top
  EXPECT_EQ(graph_.stepLength(DNode{1, 0, 12}, +1), 20);
}

TEST(TrackGraphErrors, NoTracksThrows) {
  using namespace crp::db;
  Tech tech = Tech::makeDefault(2, 20, 6, 8, 0, 10, 100);
  Library lib = Library::makeDefault(10, 100, 0);
  Design design;
  design.dieArea = geom::Rect{0, 0, 100, 100};
  Database db(std::move(tech), std::move(lib), std::move(design));
  EXPECT_THROW(TrackGraph{db}, std::invalid_argument);
}

// ---- DetailedRouter -----------------------------------------------------------

/// Runs GR then DR on a database, returning the stats and the router.
struct FlowResult {
  DetailedRouteStats stats;
};

FlowResult runFlow(const db::Database& db) {
  groute::GlobalRouter gr(db);
  gr.run();
  DetailedRouter dr(db, gr.buildGuides());
  return FlowResult{dr.run()};
}

TEST(DetailedRouter, RoutesTinyDesignClean) {
  const auto db = crp::testing::makeTinyDatabase();
  const auto flow = runFlow(db);
  EXPECT_EQ(flow.stats.openNets, 0);
  EXPECT_GT(flow.stats.wirelengthDbu, 0);
  EXPECT_GT(flow.stats.viaCount, 0);  // pins on M1, wires above
  EXPECT_EQ(flow.stats.shortViolations, 0);
  EXPECT_EQ(flow.stats.spacingViolations, 0);
}

TEST(DetailedRouter, RoutesGridDesign) {
  const auto db = crp::testing::makeGridDatabase(10, 5);
  const auto flow = runFlow(db);
  EXPECT_EQ(flow.stats.openNets, 0);
  EXPECT_GT(flow.stats.wirelengthDbu, 0);
  // Grid design is low-utilization: negotiation should clear overlaps.
  EXPECT_EQ(flow.stats.shortViolations, 0);
}

TEST(DetailedRouter, PathsConnectPinNodes) {
  const auto db = crp::testing::makeTinyDatabase();
  groute::GlobalRouter gr(db);
  gr.run();
  DetailedRouter dr(db, gr.buildGuides());
  dr.run();
  // Each multi-pin net must have >= pins-1 connections and every path
  // endpoint chain must touch all pins.
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    if (db.net(n).pins.size() < 2) continue;
    const auto& paths = dr.netPaths(n);
    EXPECT_GE(paths.size(), db.net(n).pins.size() - 1) << db.net(n).name;
    for (const auto& path : paths) {
      EXPECT_GE(path.size(), 1u);
      // Consecutive nodes differ by exactly one coordinate.
      for (std::size_t i = 1; i < path.size(); ++i) {
        const int d = std::abs(path[i].layer - path[i - 1].layer) +
                      std::abs(path[i].xi - path[i - 1].xi) +
                      std::abs(path[i].yi - path[i - 1].yi);
        EXPECT_EQ(d, 1);
      }
    }
  }
}

TEST(DetailedRouter, WirelengthLowerBoundedByPinDistance) {
  const auto db = crp::testing::makeTinyDatabase();
  groute::GlobalRouter gr(db);
  gr.run();
  DetailedRouter dr(db, gr.buildGuides());
  const auto stats = dr.run();
  // Total wirelength must be at least the sum of net HPWLs minus the
  // pin-snap slack (one pitch per pin), and is usually well above.
  geom::Coord bound = 0;
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    bound += std::max<geom::Coord>(
        0, db.netHpwl(n) -
               20 * static_cast<geom::Coord>(db.net(n).pins.size()));
  }
  EXPECT_GE(stats.wirelengthDbu, bound);
}

TEST(DetailedRouter, ViaCountCoversLayerTransitions) {
  const auto db = crp::testing::makeTinyDatabase();
  groute::GlobalRouter gr(db);
  gr.run();
  DetailedRouter dr(db, gr.buildGuides());
  const auto stats = dr.run();
  long vias = 0;
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    for (const auto& path : dr.netPaths(n)) {
      for (std::size_t i = 1; i < path.size(); ++i) {
        if (path[i].layer != path[i - 1].layer) ++vias;
      }
    }
  }
  EXPECT_EQ(stats.viaCount, vias);
}

TEST(DetailedRouter, MinAreaPatchingAddsWirelength) {
  const auto db = crp::testing::makeTinyDatabase();
  groute::GlobalRouter gr(db);
  gr.run();
  DetailedRouter dr(db, gr.buildGuides());
  const auto stats = dr.run();
  // minArea=120, width=6 -> runs shorter than 14 dbu get patched; pin
  // stubs guarantee at least some patches on this design.
  EXPECT_EQ(stats.minAreaViolations, 0);
  if (stats.minAreaPatches > 0) {
    EXPECT_GT(stats.patchedWireDbu, 0);
  }
}

// ---- DRC unit behaviour --------------------------------------------------------

TEST(Drc, CountsShortsFromSharedNodes) {
  const auto db = crp::testing::makeTinyDatabase();
  const TrackGraph graph(db);
  std::vector<std::vector<std::vector<DNode>>> paths(db.numNets());
  std::vector<std::uint16_t> usage(graph.numNodes(), 0);
  std::vector<std::int32_t> owner(graph.numNodes(), -1);
  // Two nets sharing two nodes.
  usage[graph.index(DNode{1, 5, 5})] = 2;
  usage[graph.index(DNode{1, 5, 6})] = 3;
  const DrvReport report = checkDrvs(db, graph, paths, usage, owner);
  EXPECT_EQ(report.shorts, 1 + 2);
}

TEST(Drc, CountsForeignPinCrossing) {
  const auto db = crp::testing::makeTinyDatabase();
  const TrackGraph graph(db);
  std::vector<std::vector<std::vector<DNode>>> paths(db.numNets());
  std::vector<std::uint16_t> usage(graph.numNodes(), 0);
  std::vector<std::int32_t> owner(graph.numNodes(), -1);
  const DNode pinNode{0, 3, 3};
  owner[graph.index(pinNode)] = 1;          // net 1's pin
  paths[0].push_back({pinNode});            // net 0 passes through it
  const DrvReport report = checkDrvs(db, graph, paths, usage, owner);
  EXPECT_EQ(report.shorts, 1);
}

TEST(Drc, NoSpacingViolationOnDefaultPitch) {
  // Adjacent-track vias: pitch 20, cut size 3, spacing 8 -> gap 17 > 8.
  const auto db = crp::testing::makeTinyDatabase();
  const TrackGraph graph(db);
  std::vector<std::vector<std::vector<DNode>>> paths(db.numNets());
  std::vector<std::uint16_t> usage(graph.numNodes(), 0);
  std::vector<std::int32_t> owner(graph.numNodes(), -1);
  paths[0].push_back({DNode{0, 5, 5}, DNode{1, 5, 5}});
  paths[1].push_back({DNode{0, 6, 5}, DNode{1, 6, 5}});
  const DrvReport report = checkDrvs(db, graph, paths, usage, owner);
  EXPECT_EQ(report.spacing, 0);
}

TEST(Drc, MinAreaPatchSizing) {
  const auto db = crp::testing::makeTinyDatabase();
  const TrackGraph graph(db);
  std::vector<std::vector<std::vector<DNode>>> paths(db.numNets());
  std::vector<std::uint16_t> usage(graph.numNodes(), 0);
  std::vector<std::int32_t> owner(graph.numNodes(), -1);
  // A single-node landing on layer 1 (zero length run): area = 6*6=36
  // < 120 -> patch of ceil((120-36)/6)=14 dbu.
  paths[0].push_back({DNode{0, 5, 5}, DNode{1, 5, 5}});
  const DrvReport report = checkDrvs(db, graph, paths, usage, owner);
  EXPECT_EQ(report.patches, 2);  // both runs are single nodes
  EXPECT_EQ(report.patchedWireDbu, 28);
  EXPECT_EQ(report.minArea, 0);
}

// ---- negotiation / cleanup options --------------------------------------------

TEST(DetailedRouterOptions, CleanupReducesOrMaintainsShorts) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter gr(db);
  gr.run();
  DetailedRouterOptions with;
  with.cleanupRounds = 3;
  DetailedRouterOptions without;
  without.cleanupRounds = 0;
  DetailedRouter drWith(db, gr.buildGuides(), with);
  DetailedRouter drWithout(db, gr.buildGuides(), without);
  const auto statsWith = drWith.run();
  const auto statsWithout = drWithout.run();
  EXPECT_LE(statsWith.shortViolations, statsWithout.shortViolations);
  EXPECT_EQ(statsWith.openNets, 0);
}

TEST(DetailedRouterOptions, WrongWayJogsCanBeTuned) {
  // With an enormous wrong-way penalty the router must still route
  // everything (jogs become effectively unavailable).
  const auto db = crp::testing::makeTinyDatabase();
  groute::GlobalRouter gr(db);
  gr.run();
  DetailedRouterOptions options;
  options.wrongWayPenalty = 1e6;
  DetailedRouter dr(db, gr.buildGuides(), options);
  const auto stats = dr.run();
  EXPECT_EQ(stats.openNets, 0);
}

TEST(DetailedRouterOptions, ViaUnitAutoComputedFromPitch) {
  const auto db = crp::testing::makeTinyDatabase();
  groute::GlobalRouter gr(db);
  gr.run();
  // Explicit viaUnit changes route structure measurably: a very cheap
  // via cost should never *increase* the via count vs a very expensive
  // one on the same instance.
  DetailedRouterOptions cheapVias;
  cheapVias.viaUnit = 1.0;
  DetailedRouterOptions pricyVias;
  pricyVias.viaUnit = 500.0;
  DetailedRouter drCheap(db, gr.buildGuides(), cheapVias);
  DetailedRouter drPricy(db, gr.buildGuides(), pricyVias);
  const auto cheap = drCheap.run();
  const auto pricy = drPricy.run();
  EXPECT_LE(pricy.viaCount, cheap.viaCount + 4);
}

TEST(DetailedRouterOptions, GuideEscapeDisabledCanLeaveOpens) {
  // With escape disabled and zero guide inflation, nets whose guides
  // are too tight may fail; the router must report them as opens
  // rather than crash.
  const auto db = crp::testing::makeGridDatabase(8, 4);
  groute::GlobalRouter gr(db);
  gr.run();
  DetailedRouterOptions options;
  options.allowGuideEscape = false;
  options.guideInflation = 0;
  DetailedRouter dr(db, gr.buildGuides(), options);
  const auto stats = dr.run();
  EXPECT_GE(stats.openNets, 0);  // no crash; opens may be > 0
}

TEST(DetailedRouter, DeterministicAcrossRuns) {
  const auto db = crp::testing::makeGridDatabase(10, 5);
  groute::GlobalRouter gr(db);
  gr.run();
  DetailedRouter a(db, gr.buildGuides());
  DetailedRouter b(db, gr.buildGuides());
  const auto sa = a.run();
  const auto sb = b.run();
  EXPECT_EQ(sa.wirelengthDbu, sb.wirelengthDbu);
  EXPECT_EQ(sa.viaCount, sb.viaCount);
  EXPECT_EQ(sa.shortViolations, sb.shortViolations);
}

}  // namespace
}  // namespace crp::droute\n
