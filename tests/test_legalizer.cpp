// Tests for the ILP-based legalizer: every produced candidate must be
// legal, the displacement machinery must relocate conflict cells, and
// options must bound the work done.
#include <gtest/gtest.h>

#include "db/legality.hpp"
#include "legalizer/ilp_legalizer.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace crp::legalizer {
namespace {

using db::CellId;
using geom::Point;

TEST(Legalizer, ProducesCandidatesOnOpenDesign) {
  const auto db = crp::testing::makeTinyDatabase();
  IlpLegalizer legalizer(db);
  const auto candidates = legalizer.generate(0);
  EXPECT_FALSE(candidates.empty());
  EXPECT_LE(candidates.size(),
            static_cast<std::size_t>(legalizer.options().maxCandidates));
}

TEST(Legalizer, AllCandidatesAreLegal) {
  const auto db = crp::testing::makeTinyDatabase();
  IlpLegalizer legalizer(db);
  for (CellId cell = 0; cell < db.numCells(); ++cell) {
    for (const auto& candidate : legalizer.generate(cell)) {
      EXPECT_TRUE(candidateIsLegal(db, cell, candidate))
          << "cell " << cell << " at (" << candidate.position.x << ", "
          << candidate.position.y << ")";
    }
  }
}

TEST(Legalizer, CandidatesExcludeCurrentPosition) {
  const auto db = crp::testing::makeTinyDatabase();
  IlpLegalizer legalizer(db);
  for (const auto& candidate : legalizer.generate(1)) {
    EXPECT_NE(candidate.position, db.cell(1).pos);
  }
}

TEST(Legalizer, CandidatesSortedTowardMedian) {
  const auto db = crp::testing::makeTinyDatabase();
  IlpLegalizer legalizer(db);
  const auto candidates = legalizer.generate(0);
  ASSERT_GE(candidates.size(), 2u);
  // Free-slot candidates are emitted in nondecreasing Eq. 11 cost.
  const Point median = db.medianPosition(0);
  double prev = -1.0;
  for (const auto& candidate : candidates) {
    if (!candidate.displaced.empty()) continue;
    const double cost =
        static_cast<double>(geom::manhattan(candidate.position, median));
    EXPECT_GE(cost, prev);
    prev = cost;
  }
}

TEST(Legalizer, DisplacesConflictCellInPackedRow) {
  // Build a dense packed row: cells shoulder to shoulder so any move
  // must displace a neighbour.
  using namespace crp::db;
  Tech tech = Tech::makeDefault(4, 20, 6, 8, 120, 10, 100);
  Library lib = Library::makeDefault(10, 100, 0);
  const int inv = *lib.findMacro("INV_X1");
  Design design;
  design.name = "packed";
  design.dieArea = geom::Rect{0, 0, 200, 100};
  design.rows.push_back(Row{"r0", Point{0, 0}, 20, geom::Orientation::kN});
  design.gcellCountX = 4;
  design.gcellCountY = 1;
  crp::testing::addDefaultTracks(design, tech);
  // 20 sites; place 18 single-site cells at sites 0..17 (sites 18,19
  // free at the right edge).
  for (int i = 0; i < 18; ++i) {
    Component c;
    c.name = "p" + std::to_string(i);
    c.macro = inv;
    c.pos = Point{i * 10, 0};
    design.components.push_back(c);
  }
  // A net pulling cell p0 to the right edge.
  Net net;
  net.name = "pull";
  net.pins.push_back(NetPin{CompPinRef{0, 1}});
  net.pins.push_back(NetPin{CompPinRef{17, 0}});
  design.nets.push_back(net);
  Database db(std::move(tech), std::move(lib), std::move(design));
  ASSERT_TRUE(isPlacementLegal(db));

  LegalizerOptions options;
  options.numSites = 20;
  options.numRows = 1;
  IlpLegalizer legalizer(db, options);
  const auto candidates = legalizer.generate(0);
  ASSERT_FALSE(candidates.empty());
  bool sawDisplacement = false;
  for (const auto& candidate : candidates) {
    EXPECT_TRUE(candidateIsLegal(db, 0, candidate));
    if (!candidate.displaced.empty()) sawDisplacement = true;
  }
  EXPECT_TRUE(sawDisplacement);
}

TEST(Legalizer, RespectsFixedCells) {
  auto db = crp::testing::makeTinyDatabase();
  // Fix c1; candidates for c0 must never displace it.
  db.mutableDesign().components[1].fixed = true;
  IlpLegalizer legalizer(db);
  for (const auto& candidate : legalizer.generate(0)) {
    for (const auto& [id, pos] : candidate.displaced) {
      EXPECT_NE(id, 1);
    }
  }
}

TEST(Legalizer, MaxCandidatesHonored) {
  const auto db = crp::testing::makeTinyDatabase();
  LegalizerOptions options;
  options.maxCandidates = 2;
  IlpLegalizer legalizer(db, options);
  EXPECT_LE(legalizer.generate(2).size(), 2u);
}

TEST(Legalizer, WindowBoundsDisplacement) {
  // Candidates (and displaced cells) stay inside the window around the
  // cell: numSites * siteWidth wide, numRows rows tall.
  const auto db = crp::testing::makeTinyDatabase();
  LegalizerOptions options;
  options.numSites = 8;
  options.numRows = 3;
  IlpLegalizer legalizer(db, options);
  for (CellId cell = 0; cell < db.numCells(); ++cell) {
    const auto center = db.cell(cell).pos;
    for (const auto& candidate : legalizer.generate(cell)) {
      EXPECT_LE(std::abs(candidate.position.x - center.x),
                8 * db.siteWidth());
      EXPECT_LE(std::abs(candidate.position.y - center.y),
                3 * db.rowHeight());
    }
  }
}

// Property sweep: random dense rows; every candidate from every cell is
// legal and inside the die.
TEST(LegalizerProperty, RandomDenseRowsAlwaysLegal) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    using namespace crp::db;
    Tech tech = Tech::makeDefault(4, 20, 6, 8, 120, 10, 100);
    Library lib = Library::makeDefault(10, 100, 0);
    Design design;
    design.name = "rand";
    design.dieArea = geom::Rect{0, 0, 400, 300};
    for (int r = 0; r < 3; ++r) {
      design.rows.push_back(Row{"r" + std::to_string(r), Point{0, 100 * r},
                                40, geom::Orientation::kN});
    }
    design.gcellCountX = 4;
    design.gcellCountY = 3;
    crp::testing::addDefaultTracks(design, tech);
    // Random non-overlapping placement, ~70% utilization.
    int id = 0;
    for (int r = 0; r < 3; ++r) {
      Coord x = 0;
      while (x < 400) {
        const int macroId =
            static_cast<int>(rng.uniformInt(0, lib.numMacros() - 1));
        const auto& macro = lib.macro(macroId);
        if (x + macro.width > 400) break;
        if (rng.bernoulli(0.7)) {
          Component c;
          c.name = "c" + std::to_string(id++);
          c.macro = macroId;
          c.pos = Point{x, 100 * r};
          design.components.push_back(c);
          x += macro.width;
        } else {
          x += 10;
        }
      }
    }
    // A few random 2-pin nets to give cells medians.
    const int numCells = static_cast<int>(design.components.size());
    for (int i = 0; i + 1 < numCells; i += 3) {
      Net net;
      net.name = "n" + std::to_string(i);
      net.pins.push_back(NetPin{CompPinRef{i, 0}});
      net.pins.push_back(NetPin{
          CompPinRef{static_cast<int>(rng.uniformInt(0, numCells - 1)), 1}});
      design.nets.push_back(net);
    }
    Database db(std::move(tech), std::move(lib), std::move(design));
    ASSERT_TRUE(isPlacementLegal(db)) << "trial " << trial;

    IlpLegalizer legalizer(db);
    for (CellId cell = 0; cell < std::min(db.numCells(), 12); ++cell) {
      for (const auto& candidate : legalizer.generate(cell)) {
        EXPECT_TRUE(candidateIsLegal(db, cell, candidate))
            << "trial " << trial << " cell " << cell;
      }
    }
  }
}

}  // namespace
}  // namespace crp::legalizer
