// Tests for the detailed placer: HPWL never increases, legality is
// preserved by every move type, convergence and determinism.
#include <gtest/gtest.h>

#include "bmgen/generator.hpp"
#include "db/legality.hpp"
#include "dplace/detailed_placer.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace crp::dplace {
namespace {

bmgen::BenchmarkSpec spec(int cells, std::uint64_t seed,
                          double utilization = 0.6) {
  bmgen::BenchmarkSpec s;
  s.name = "dplace";
  s.targetCells = cells;
  s.seed = seed;
  s.utilization = utilization;  // space to move into
  return s;
}

TEST(DetailedPlacer, NeverIncreasesHpwl) {
  auto db = bmgen::generateBenchmark(spec(300, 1));
  DetailedPlacer placer(db);
  const auto report = placer.run();
  EXPECT_LE(report.hpwlAfter, report.hpwlBefore);
  EXPECT_EQ(report.hpwlAfter, db.totalHpwl());
}

TEST(DetailedPlacer, ImprovesShuffledPlacement) {
  // Shuffle a placement by swapping far-apart equal-width cells, then
  // check the placer recovers a meaningful fraction of the damage.
  auto db = bmgen::generateBenchmark(spec(300, 2));
  const geom::Coord optimized = db.totalHpwl();
  util::Rng rng(5);
  int shuffles = 0;
  for (int attempt = 0; attempt < 400 && shuffles < 60; ++attempt) {
    const db::CellId a =
        static_cast<db::CellId>(rng.uniformInt(0, db.numCells() - 1));
    const db::CellId b =
        static_cast<db::CellId>(rng.uniformInt(0, db.numCells() - 1));
    if (a == b) continue;
    if (db.macroOf(a).width != db.macroOf(b).width) continue;
    const auto pa = db.cell(a).pos;
    const auto pb = db.cell(b).pos;
    db.moveCell(a, pb);
    db.moveCell(b, pa);
    ++shuffles;
  }
  ASSERT_TRUE(db::isPlacementLegal(db));
  const geom::Coord shuffled = db.totalHpwl();
  ASSERT_GT(shuffled, optimized);

  DetailedPlacerOptions options;
  options.passes = 3;
  DetailedPlacer placer(db, options);
  const auto report = placer.run();
  EXPECT_TRUE(db::isPlacementLegal(db));
  EXPECT_LT(report.hpwlAfter, shuffled);
  // Recover at least a third of the inflicted damage.
  EXPECT_LT(static_cast<double>(report.hpwlAfter),
            shuffled - 0.33 * (shuffled - optimized));
  EXPECT_GT(report.swaps + report.relocations + report.reorders, 0);
}

TEST(DetailedPlacer, PreservesLegality) {
  auto db = bmgen::generateBenchmark(spec(400, 3, 0.8));
  ASSERT_TRUE(db::isPlacementLegal(db));
  DetailedPlacer placer(db);
  placer.run();
  EXPECT_TRUE(db::isPlacementLegal(db));
}

TEST(DetailedPlacer, FixedCellsDoNotMove) {
  auto db = bmgen::generateBenchmark(spec(200, 4));
  for (db::CellId c = 0; c < db.numCells(); c += 3) {
    db.mutableDesign().components[c].fixed = true;
  }
  std::vector<geom::Point> fixedBefore;
  for (db::CellId c = 0; c < db.numCells(); c += 3) {
    fixedBefore.push_back(db.cell(c).pos);
  }
  DetailedPlacer placer(db);
  placer.run();
  std::size_t i = 0;
  for (db::CellId c = 0; c < db.numCells(); c += 3) {
    EXPECT_EQ(db.cell(c).pos, fixedBefore[i++]);
  }
  EXPECT_TRUE(db::isPlacementLegal(db));
}

TEST(DetailedPlacer, DeterministicAcrossRuns) {
  auto run = [] {
    auto db = bmgen::generateBenchmark(spec(250, 6));
    DetailedPlacer placer(db);
    placer.run();
    std::vector<geom::Point> positions;
    for (db::CellId c = 0; c < db.numCells(); ++c) {
      positions.push_back(db.cell(c).pos);
    }
    return positions;
  };
  EXPECT_EQ(run(), run());
}

TEST(DetailedPlacer, ConvergesWithinPassBudget) {
  auto db = bmgen::generateBenchmark(spec(200, 7));
  DetailedPlacerOptions options;
  options.passes = 10;  // converged passes exit early
  DetailedPlacer placer(db, options);
  const auto first = placer.run();
  // Running again finds (almost) nothing: the placement is a local
  // optimum for these move types.
  DetailedPlacer placer2(db, options);
  const auto second = placer2.run();
  EXPECT_EQ(second.hpwlBefore, first.hpwlAfter);
  EXPECT_LE(second.hpwlBefore - second.hpwlAfter,
            (first.hpwlBefore - first.hpwlAfter) / 4 + 1);
}

TEST(DetailedPlacer, ReportImprovementPercent) {
  DetailedPlacerReport report;
  report.hpwlBefore = 1000;
  report.hpwlAfter = 900;
  EXPECT_DOUBLE_EQ(report.improvementPercent(), 10.0);
  report.hpwlBefore = 0;
  EXPECT_DOUBLE_EQ(report.improvementPercent(), 0.0);
}

}  // namespace
}  // namespace crp::dplace
