// Tests for the [18] median-move comparator: legality preservation,
// no-open-nets invariant, the time-budget "Failed" behaviour and its
// characteristic differences from CR&P.
#include <gtest/gtest.h>

#include "baseline/median_ilp.hpp"
#include "bmgen/generator.hpp"
#include "db/legality.hpp"
#include "test_helpers.hpp"

namespace crp::baseline {
namespace {

struct Fixture {
  Fixture() : db(crp::testing::makeGridDatabase(10, 6)), router(db) {
    router.run();
  }
  db::Database db;
  groute::GlobalRouter router;
};

TEST(Baseline, KeepsPlacementLegal) {
  Fixture f;
  ASSERT_TRUE(db::isPlacementLegal(f.db));
  const auto result = runMedianIlpOptimizer(f.db, f.router);
  EXPECT_FALSE(result.failed);
  EXPECT_TRUE(db::isPlacementLegal(f.db));
}

TEST(Baseline, ConsidersEveryMovableCell) {
  Fixture f;
  const auto result = runMedianIlpOptimizer(f.db, f.router);
  int movable = 0;
  for (db::CellId c = 0; c < f.db.numCells(); ++c) {
    if (!f.db.cell(c).fixed && !f.db.netsOfCell(c).empty()) ++movable;
  }
  EXPECT_EQ(result.consideredCells, movable);
}

TEST(Baseline, NoOpenNetsAfter) {
  Fixture f;
  runMedianIlpOptimizer(f.db, f.router);
  EXPECT_EQ(f.router.stats().openNets, 0);
  for (db::NetId n = 0; n < f.db.numNets(); ++n) {
    const auto terminals = f.router.netTerminals(n);
    if (terminals.size() < 2) continue;
    EXPECT_TRUE(routeConnectsTerminals(f.router.route(n), terminals));
  }
}

TEST(Baseline, TimeBudgetTriggersFailure) {
  Fixture f;
  BaselineOptions options;
  options.timeBudgetSeconds = 0.0;  // immediate exhaustion
  const auto result = runMedianIlpOptimizer(f.db, f.router, options);
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.movedCells, 0);
  // A failed run must not have mutated the placement.
  EXPECT_TRUE(db::isPlacementLegal(f.db));
}

TEST(Baseline, RestoresCongestionPenaltyConfig) {
  Fixture f;
  ASSERT_TRUE(f.router.graph().config().congestionPenalty);
  runMedianIlpOptimizer(f.db, f.router);
  EXPECT_TRUE(f.router.graph().config().congestionPenalty);
}

TEST(Baseline, DemandMapsStayConsistent) {
  Fixture f;
  runMedianIlpOptimizer(f.db, f.router);
  for (db::NetId n = 0; n < f.db.numNets(); ++n) f.router.ripUp(n);
  EXPECT_EQ(f.router.graph().totalWireDbu(), 0);
  EXPECT_EQ(f.router.graph().totalVias(), 0);
}

TEST(Baseline, MovesCellsTowardMedianOnPulledDesign) {
  // Construct a design with one badly placed cell: the baseline should
  // move it toward its median.
  bmgen::BenchmarkSpec spec;
  spec.targetCells = 300;
  spec.seed = 5;
  spec.utilization = 0.5;  // space to move into
  auto db = bmgen::generateBenchmark(spec);
  groute::GlobalRouter router(db);
  router.run();
  const auto result = runMedianIlpOptimizer(db, router);
  EXPECT_FALSE(result.failed);
  EXPECT_GT(result.movedCells, 0);
  EXPECT_TRUE(db::isPlacementLegal(db));
}

}  // namespace
}  // namespace crp::baseline
