// Unit tests for the util module: logger formatting, RNG determinism
// and distribution sanity, timers, thread pool, string helpers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/file_io.hpp"
#include "util/logger.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace crp::util {
namespace {

// ---- formatMessage -------------------------------------------------------

TEST(FormatMessage, SubstitutesPositionalPlaceholders) {
  EXPECT_EQ(formatMessage("a {} c {}", 1, "x"), "a 1 c x");
}

TEST(FormatMessage, NoPlaceholders) {
  EXPECT_EQ(formatMessage("plain"), "plain");
}

TEST(FormatMessage, ExtraArgsIgnored) {
  EXPECT_EQ(formatMessage("only {}", 1, 2, 3), "only 1");
}

TEST(FormatMessage, MissingArgsLeaveTail) {
  EXPECT_EQ(formatMessage("{} and {}", 7), "7 and {}");
}

TEST(Logger, RespectsLevelThreshold) {
  std::ostringstream sink;
  Logger::instance().setStream(&sink);
  Logger::instance().setLevel(LogLevel::kWarn);
  CRP_LOG_INFO("hidden");
  CRP_LOG_WARN("visible {}", 42);
  Logger::instance().setStream(nullptr);
  Logger::instance().setLevel(LogLevel::kInfo);
  const std::string text = sink.str();
  EXPECT_EQ(text.find("hidden"), std::string::npos);
  EXPECT_NE(text.find("visible 42"), std::string::npos);
}


TEST(FormatMessage, AdjacentPlaceholders) {
  EXPECT_EQ(formatMessage("{}{}", 1, 2), "12");
}

TEST(PhaseTimer, ClearResetsEverything) {
  PhaseTimer timer;
  timer.charge("a", 1.0);
  timer.clear();
  EXPECT_DOUBLE_EQ(timer.grandTotal(), 0.0);
  EXPECT_TRUE(timer.phases().empty());
}

TEST(Logger, LevelRoundTrip) {
  const auto saved = Logger::instance().level();
  Logger::instance().setLevel(LogLevel::kError);
  EXPECT_EQ(Logger::instance().level(), LogLevel::kError);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
  Logger::instance().setLevel(saved);
}

// ---- Rng -----------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, GeometricRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const auto k = rng.geometric(2, 0.5, 10);
    EXPECT_GE(k, 2);
    EXPECT_LE(k, 10);
  }
}

// ---- timers ----------------------------------------------------------------

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(watch.seconds(), 0.005);
}

TEST(PhaseTimer, AccumulatesPerPhase) {
  PhaseTimer timer;
  timer.charge("a", 1.0);
  timer.charge("b", 3.0);
  timer.charge("a", 1.0);
  EXPECT_DOUBLE_EQ(timer.total("a"), 2.0);
  EXPECT_DOUBLE_EQ(timer.total("b"), 3.0);
  EXPECT_DOUBLE_EQ(timer.grandTotal(), 5.0);
  EXPECT_DOUBLE_EQ(timer.percent("a"), 40.0);
  EXPECT_EQ(timer.phases(), (std::vector<std::string>{"a", "b"}));
}

TEST(PhaseTimer, HasReportsChargedPhases) {
  PhaseTimer timer;
  EXPECT_FALSE(timer.has("missing"));
  timer.charge("present", 1.0);
  EXPECT_TRUE(timer.has("present"));
  EXPECT_FALSE(timer.has("missing"));
}

TEST(PhaseTimerDeathTest, UnknownPhaseAssertsInDebug) {
  PhaseTimer timer;
  timer.charge("present", 1.0);
  // Debug builds assert on a never-charged phase (catching phase-name
  // typos); release builds keep the old return-zero behavior.  The
  // EXPECT_DEBUG_DEATH statement body runs normally when NDEBUG is set.
  EXPECT_DEBUG_DEATH(
      {
        const double value = timer.total("missing");
        (void)value;
      },
      "unknown phase");
#ifdef NDEBUG
  EXPECT_DOUBLE_EQ(timer.total("missing"), 0.0);
#endif
}

TEST(ScopedTimer, ChargesOnDestruction) {
  PhaseTimer timer;
  {
    ScopedTimer guard(timer, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(timer.total("scope"), 0.0);
}

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallelFor(hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallelFor(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallelFor(100, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(256,
                       [](std::size_t i) {
                         if (i == 100) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable: no stuck active_ count, no stale error.
  std::vector<int> hits(64, 0);
  pool.parallelFor(hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
  pool.waitIdle();  // must not hang or rethrow
}

TEST(ThreadPool, ParallelForFirstExceptionWins) {
  ThreadPool pool(4);
  try {
    pool.parallelFor(512, [](std::size_t) {
      throw std::runtime_error("every index throws");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "every index throws");
  }
}

TEST(ThreadPool, SubmitExceptionSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(pool.waitIdle(), std::logic_error);
  // Consumed: a second wait is clean.
  pool.waitIdle();
}

TEST(ThreadPool, DynamicChunkingBalancesSkewedWork) {
  // One index is ~1000x more expensive than the rest.  With dynamic
  // chunk pulling, all indices still run exactly once and the call
  // returns (a static partition would also pass, but this exercises
  // the cursor path with heavily unequal chunk durations).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(997);
  pool.parallelFor(hits.size(), [&hits](std::size_t i) {
    volatile long spin = (i == 3) ? 2000000 : 2000;
    while (spin > 0) spin = spin - 1;
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForExceptionStopsEarly) {
  // After the throwing chunk is observed, remaining chunks are skipped;
  // the executed count must be well short of n on any schedule where
  // the abort flag is seen (we only assert completion + correctness of
  // the executed set, since scheduling is timing-dependent).
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallelFor(4096,
                                [&executed](std::size_t i) {
                                  if (i == 0) throw 42;
                                  executed.fetch_add(1);
                                }),
               int);
  EXPECT_LE(executed.load(), 4096);
}

// ---- string utils ------------------------------------------------------------

TEST(StringUtil, SplitWhitespace) {
  const auto tokens = splitWhitespace("  a\tbb \n ccc ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "ccc");
}

TEST(StringUtil, SplitWhitespaceEmpty) {
  EXPECT_TRUE(splitWhitespace("   ").empty());
  EXPECT_TRUE(splitWhitespace("").empty());
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, FirstTokenIs) {
  EXPECT_TRUE(firstTokenIs("  MACRO foo", "MACRO"));
  EXPECT_TRUE(firstTokenIs("MACRO", "MACRO"));
  EXPECT_FALSE(firstTokenIs("MACROS foo", "MACRO"));
  EXPECT_FALSE(firstTokenIs("x MACRO", "MACRO"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(StringUtil, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

// ---- Logger sinks ----------------------------------------------------------

TEST(Logger, SetSinkOwnsTheStream) {
  Logger logger;
  auto sink = std::make_shared<std::ostringstream>();
  logger.setSink(sink);
  logger.write(LogLevel::kInfo, formatMessage("owned {}", 1));
  EXPECT_NE(sink->str().find("owned 1"), std::string::npos);
  EXPECT_EQ(logger.sink(), sink);
}

TEST(Logger, SetStreamShimAliasesWithoutOwning) {
  Logger logger;
  std::ostringstream sink;
  logger.setStream(&sink);
  logger.write(LogLevel::kWarn, "aliased");
  EXPECT_NE(sink.str().find("aliased"), std::string::npos);
  logger.setStream(nullptr);
}

TEST(Logger, ScopeRoutesCurrentLogger) {
  Logger scoped;
  auto sink = std::make_shared<std::ostringstream>();
  scoped.setSink(sink);
  EXPECT_EQ(&Logger::current(), &Logger::instance());
  {
    LoggerScope scope(&scoped);
    EXPECT_EQ(&Logger::current(), &scoped);
    CRP_LOG_WARN("scoped {}", 9);
  }
  EXPECT_EQ(&Logger::current(), &Logger::instance());
  EXPECT_NE(sink->str().find("scoped 9"), std::string::npos);
}

// The PR-8 dangling-sink regression (run under TSan in the bench
// script's sanitizer leg): one thread logs while another swaps the
// sink.  With the old raw-pointer setStream the writer could keep
// using a destroyed stream; shared_ptr sinks swapped under the write
// mutex make every line land in a stream that is still alive.
TEST(Logger, SinkSwapWhileLoggingIsSafe) {
  Logger logger;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      logger.write(LogLevel::kWarn, formatMessage("swap race {}", 1));
    }
  });
  for (int i = 0; i < 200; ++i) {
    logger.setSink(std::make_shared<std::ostringstream>());
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  logger.setSink(nullptr);
}

// ---- writeFileAtomic -------------------------------------------------------

namespace fs = std::filesystem;

std::string tempDirFor(const char* name) {
  const fs::path dir = fs::temp_directory_path() /
                       ("crp_test_util_" + std::to_string(::getpid())) / name;
  fs::create_directories(dir);
  return dir.string();
}

TEST(FileIo, WriteFileAtomicWritesContent) {
  const std::string path = tempDirFor("write") + "/out.txt";
  std::string error;
  ASSERT_TRUE(writeFileAtomic(path, "payload\n", &error)) << error;
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "payload\n");
}

TEST(FileIo, WriteFileAtomicReplacesExisting) {
  const std::string path = tempDirFor("replace") + "/out.txt";
  ASSERT_TRUE(writeFileAtomic(path, "old"));
  ASSERT_TRUE(writeFileAtomic(path, "new"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "new");
}

TEST(FileIo, WriteFileAtomicFailsOnMissingDirectory) {
  const std::string path =
      tempDirFor("missing") + "/no/such/dir/out.txt";
  std::string error;
  EXPECT_FALSE(writeFileAtomic(path, "x", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fs::exists(path));
}

TEST(FileIo, ProducerFailureLeavesNoFileBehind) {
  const std::string dir = tempDirFor("producer");
  const std::string path = dir + "/out.txt";
  std::string error;
  EXPECT_FALSE(writeFileAtomic(
      path, [](std::ostream& os) -> bool { os << "partial"; return false; },
      &error));
  EXPECT_FALSE(fs::exists(path));
  // No temp droppings either — the half-written file must be cleaned up.
  EXPECT_TRUE(fs::is_empty(dir));
}

// ---- appendLineAtomic ------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(FileIo, AppendLineAtomicAppendsTerminatedLines) {
  const std::string path = tempDirFor("append") + "/ledger.jsonl";
  std::string error;
  ASSERT_TRUE(appendLineAtomic(path, "first", &error)) << error;
  ASSERT_TRUE(appendLineAtomic(path, "second", &error)) << error;
  EXPECT_EQ(slurp(path), "first\nsecond\n");
}

TEST(FileIo, AppendLineAtomicRepairsTornTail) {
  // A crash mid-append can leave the file without a trailing newline;
  // the next append must start a fresh line so the torn fragment stays
  // confined to its own (skippable) line.
  const std::string path = tempDirFor("torn") + "/ledger.jsonl";
  {
    std::ofstream out(path);
    out << "good\ntorn-fragmen";
  }
  ASSERT_TRUE(appendLineAtomic(path, "next"));
  EXPECT_EQ(slurp(path), "good\ntorn-fragmen\nnext\n");
}

TEST(FileIo, AppendLineAtomicConcurrentAppendsKeepLinesIntact) {
  // O_APPEND + one write() per line: concurrent appenders may
  // interleave lines in any order, but never within a line.
  const std::string path = tempDirFor("concurrent") + "/ledger.jsonl";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&path, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string line =
            "t" + std::to_string(t) + ":" + std::to_string(i) + ":payload";
        ASSERT_TRUE(appendLineAtomic(path, line));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  std::ifstream in(path);
  std::string line;
  std::set<std::string> seen;
  while (std::getline(in, line)) {
    // Every line is exactly one of the written payloads — no tearing.
    ASSERT_EQ(line.find(":payload"), line.size() - 8) << line;
    seen.insert(line);
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

// ---- shared-pool reentrancy ------------------------------------------------

// A parallelFor body that itself calls parallelFor on the same pool
// must complete (per-call completion state, caller participates) — the
// serve daemon runs framework phases and router batches of several
// sessions on one pool, so outer/inner nesting is the steady state.
TEST(ThreadPool, NestedParallelForOnOnePoolCompletes) {
  ThreadPool pool(2);
  constexpr int kOuter = 8;
  constexpr int kInner = 64;
  std::atomic<int> total{0};
  pool.parallelFor(kOuter, [&](std::size_t) {
    pool.parallelFor(kInner, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPool, ConcurrentParallelForCallersDoNotCrossWait) {
  ThreadPool pool(4);
  constexpr int kIterations = 2000;
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread ta([&] {
    pool.parallelFor(kIterations,
                     [&](std::size_t) { a.fetch_add(1); });
  });
  std::thread tb([&] {
    pool.parallelFor(kIterations,
                     [&](std::size_t) { b.fetch_add(1); });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), kIterations);
  EXPECT_EQ(b.load(), kIterations);
}

TEST(ThreadPool, TaskWrapperAppliesAtSubmitTime) {
  const ThreadPool::TaskWrapper previous = ThreadPool::taskWrapper();
  static std::atomic<int> wrapped{0};
  ThreadPool::setTaskWrapper([](ThreadPool::Task task) -> ThreadPool::Task {
    return [task = std::move(task)] {
      wrapped.fetch_add(1, std::memory_order_relaxed);
      task();
    };
  });
  {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 5; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 5);
  }
  EXPECT_EQ(wrapped.load(), 5);
  ThreadPool::setTaskWrapper(previous);
}

}  // namespace
}  // namespace crp::util
