// Tests for LEF/DEF/guide parsing and writing, including full
// round-trip properties: write(parse(x)) preserves all modeled fields.
#include <gtest/gtest.h>

#include <sstream>

#include "db/database.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/guide_io.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"
#include "lefdef/tokenizer.hpp"
#include "test_helpers.hpp"

namespace crp::lefdef {
namespace {

// ---- Tokenizer -------------------------------------------------------------

TEST(Tokenizer, SplitsPunctuationAndStripsComments) {
  Tokenizer tok("FOO ( 1 2 ) ; # comment\nBAR");
  EXPECT_EQ(tok.next().text, "FOO");
  EXPECT_EQ(tok.next().text, "(");
  EXPECT_EQ(tok.next().text, "1");
  EXPECT_EQ(tok.next().text, "2");
  EXPECT_EQ(tok.next().text, ")");
  EXPECT_EQ(tok.next().text, ";");
  const Token bar = tok.next();
  EXPECT_EQ(bar.text, "BAR");
  EXPECT_EQ(bar.line, 2);
  EXPECT_TRUE(tok.atEnd());
}

TEST(Tokenizer, QuotedStringsAreSingleTokens) {
  Tokenizer tok("BUSBITCHARS \"[]\" ;");
  tok.expect("BUSBITCHARS");
  EXPECT_EQ(tok.next().text, "[]");
}

TEST(Tokenizer, ExpectThrowsWithLineNumber) {
  Tokenizer tok("A\nB");
  tok.next();
  try {
    tok.expect("C");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line, 2);
  }
}

TEST(Tokenizer, NumericReaders) {
  Tokenizer tok("1.5 -42 zzz");
  EXPECT_DOUBLE_EQ(tok.nextDouble(), 1.5);
  EXPECT_EQ(tok.nextInt(), -42);
  EXPECT_THROW(tok.nextInt(), ParseError);
}

TEST(Tokenizer, SkipStatement) {
  Tokenizer tok("A B C ; D");
  tok.skipStatement();
  EXPECT_EQ(tok.next().text, "D");
}

TEST(Tokenizer, PeekAheadAndAccept) {
  Tokenizer tok("X Y");
  EXPECT_EQ(tok.peek(1).text, "Y");
  EXPECT_FALSE(tok.accept("Y"));
  EXPECT_TRUE(tok.accept("X"));
}

// ---- LEF round-trip -----------------------------------------------------------

TEST(LefRoundTrip, PreservesTechAndLibrary) {
  const auto db = crp::testing::makeTinyDatabase();
  std::ostringstream out;
  writeLef(out, db.tech(), db.library());
  const auto [tech2, lib2] = parseLef(out.str());

  ASSERT_EQ(tech2.numLayers(), db.tech().numLayers());
  for (int i = 0; i < tech2.numLayers(); ++i) {
    const auto& a = db.tech().layer(i);
    const auto& b = tech2.layer(i);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.dir, b.dir);
    EXPECT_EQ(a.pitch, b.pitch);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.spacing, b.spacing);
    EXPECT_EQ(a.minArea, b.minArea);
    EXPECT_EQ(a.offset, b.offset);
  }
  EXPECT_EQ(tech2.site.width, db.tech().site.width);
  EXPECT_EQ(tech2.site.height, db.tech().site.height);
  EXPECT_EQ(tech2.vias().size(), db.tech().vias().size());
  EXPECT_EQ(tech2.cutLayers().size(), db.tech().cutLayers().size());

  ASSERT_EQ(lib2.numMacros(), db.library().numMacros());
  for (int m = 0; m < lib2.numMacros(); ++m) {
    const auto& a = db.library().macro(m);
    const auto& b = lib2.macro(m);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.height, b.height);
    ASSERT_EQ(a.pins.size(), b.pins.size());
    for (std::size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_EQ(a.pins[p].name, b.pins[p].name);
      EXPECT_EQ(a.pins[p].dir, b.pins[p].dir);
      ASSERT_EQ(a.pins[p].shapes.size(), b.pins[p].shapes.size());
      for (std::size_t s = 0; s < a.pins[p].shapes.size(); ++s) {
        EXPECT_EQ(a.pins[p].shapes[s].layer, b.pins[p].shapes[s].layer);
        EXPECT_EQ(a.pins[p].shapes[s].rect, b.pins[p].shapes[s].rect);
      }
    }
  }
}

TEST(LefParser, RejectsGarbage) {
  EXPECT_THROW(parseLef("THIS_IS_NOT_LEF ;"), ParseError);
}

TEST(LefParser, ParsesMinimalHandWrittenLef) {
  const std::string lef = R"(
VERSION 5.8 ;
UNITS
  DATABASE MICRONS 2000 ;
END UNITS
SITE core
  CLASS CORE ;
  SIZE 0.2 BY 2.0 ;
END core
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.4 ;
  WIDTH 0.1 ;
  SPACING 0.1 ;
END M1
MACRO AND2
  CLASS CORE ;
  SIZE 0.4 BY 2.0 ;
  PIN A
    DIRECTION INPUT ;
    PORT
      LAYER M1 ;
        RECT 0.0 0.9 0.1 1.0 ;
    END
  END A
END AND2
END LIBRARY
)";
  const auto [tech, lib] = parseLef(lef);
  EXPECT_EQ(tech.dbuPerMicron, 2000);
  EXPECT_EQ(tech.site.width, 400);
  ASSERT_EQ(tech.numLayers(), 1);
  EXPECT_EQ(tech.layer(0).pitch, 800);
  ASSERT_EQ(lib.numMacros(), 1);
  EXPECT_EQ(lib.macro(0).width, 800);
  ASSERT_EQ(lib.macro(0).pins.size(), 1u);
  EXPECT_EQ(lib.macro(0).pins[0].shapes[0].rect,
            (geom::Rect{0, 1800, 200, 2000}));
}

// ---- DEF round-trip -----------------------------------------------------------

TEST(DefRoundTrip, PreservesDesign) {
  const auto db = crp::testing::makeTinyDatabase();
  std::ostringstream out;
  writeDef(out, db);
  const db::Design design2 = parseDef(out.str(), db.tech(), db.library());

  EXPECT_EQ(design2.name, db.design().name);
  EXPECT_EQ(design2.dieArea, db.design().dieArea);
  EXPECT_EQ(design2.gcellCountX, db.design().gcellCountX);
  EXPECT_EQ(design2.gcellCountY, db.design().gcellCountY);
  ASSERT_EQ(design2.rows.size(), db.design().rows.size());
  for (std::size_t i = 0; i < design2.rows.size(); ++i) {
    EXPECT_EQ(design2.rows[i].origin, db.design().rows[i].origin);
    EXPECT_EQ(design2.rows[i].numSites, db.design().rows[i].numSites);
  }
  ASSERT_EQ(design2.components.size(), db.design().components.size());
  for (std::size_t i = 0; i < design2.components.size(); ++i) {
    EXPECT_EQ(design2.components[i].name, db.design().components[i].name);
    EXPECT_EQ(design2.components[i].macro, db.design().components[i].macro);
    EXPECT_EQ(design2.components[i].pos, db.design().components[i].pos);
    EXPECT_EQ(design2.components[i].fixed, db.design().components[i].fixed);
  }
  ASSERT_EQ(design2.nets.size(), db.design().nets.size());
  for (std::size_t i = 0; i < design2.nets.size(); ++i) {
    const auto& a = db.design().nets[i];
    const auto& b = design2.nets[i];
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.pins.size(), b.pins.size());
    for (std::size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_EQ(a.pins[p].isIo(), b.pins[p].isIo());
      if (!a.pins[p].isIo()) {
        EXPECT_EQ(a.pins[p].compPin(), b.pins[p].compPin());
      } else {
        EXPECT_EQ(a.pins[p].ioPin(), b.pins[p].ioPin());
      }
    }
  }
  ASSERT_EQ(design2.ioPins.size(), db.design().ioPins.size());
  EXPECT_EQ(design2.ioPins[0].pos, db.design().ioPins[0].pos);

  // Round-tripped design must still index cleanly into a Database.
  db::Database db2(db.tech(), db.library(), design2);
  EXPECT_EQ(db2.totalHpwl(), db.totalHpwl());
}

TEST(DefParser, TracksDirectionConvention) {
  const auto base = crp::testing::makeTinyDatabase();
  const std::string def = R"(
VERSION 5.8 ;
DESIGN t ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 1000 1000 ) ;
TRACKS X 10 DO 5 STEP 20 LAYER Metal2 ;
TRACKS Y 10 DO 5 STEP 20 LAYER Metal1 ;
COMPONENTS 0 ;
END COMPONENTS
NETS 0 ;
END NETS
END DESIGN
)";
  const auto design = parseDef(def, base.tech(), base.library());
  ASSERT_EQ(design.tracks.size(), 2u);
  EXPECT_EQ(design.tracks[0].dir, db::LayerDir::kVertical);
  EXPECT_EQ(design.tracks[0].layer, 1);
  EXPECT_EQ(design.tracks[1].dir, db::LayerDir::kHorizontal);
  EXPECT_EQ(design.tracks[1].layer, 0);
  EXPECT_EQ(design.tracks[0].start, 10);
  EXPECT_EQ(design.tracks[0].count, 5);
  EXPECT_EQ(design.tracks[0].step, 20);
}

TEST(DefParser, UnknownMacroThrows) {
  const auto base = crp::testing::makeTinyDatabase();
  const std::string def = R"(
DESIGN t ;
DIEAREA ( 0 0 ) ( 10 10 ) ;
COMPONENTS 1 ;
  - u1 NO_SUCH_MACRO + PLACED ( 0 0 ) N ;
END COMPONENTS
END DESIGN
)";
  EXPECT_THROW(parseDef(def, base.tech(), base.library()), ParseError);
}

TEST(DefParser, UnknownNetPinThrows) {
  const auto base = crp::testing::makeTinyDatabase();
  const std::string def = R"(
DESIGN t ;
DIEAREA ( 0 0 ) ( 10 10 ) ;
COMPONENTS 1 ;
  - u1 INV_X1 + PLACED ( 0 0 ) N ;
END COMPONENTS
NETS 1 ;
  - n ( u1 NO_PIN ) ;
END NETS
END DESIGN
)";
  EXPECT_THROW(parseDef(def, base.tech(), base.library()), ParseError);
}

TEST(DefParser, FixedComponentsKeepFlag) {
  const auto base = crp::testing::makeTinyDatabase();
  const std::string def = R"(
DESIGN t ;
DIEAREA ( 0 0 ) ( 10 10 ) ;
COMPONENTS 1 ;
  - u1 INV_X1 + FIXED ( 4 5 ) FS ;
END COMPONENTS
END DESIGN
)";
  const auto design = parseDef(def, base.tech(), base.library());
  ASSERT_EQ(design.components.size(), 1u);
  EXPECT_TRUE(design.components[0].fixed);
  EXPECT_EQ(design.components[0].orient, geom::Orientation::kFS);
  EXPECT_EQ(design.components[0].pos, (geom::Point{4, 5}));
}

TEST(DefParser, BlockagesParsed) {
  const auto base = crp::testing::makeTinyDatabase();
  const std::string def = R"(
DESIGN t ;
DIEAREA ( 0 0 ) ( 100 100 ) ;
BLOCKAGES 2 ;
  - LAYER Metal1 RECT ( 0 0 ) ( 10 10 ) ;
  - PLACEMENT RECT ( 20 20 ) ( 30 30 ) ;
END BLOCKAGES
END DESIGN
)";
  const auto design = parseDef(def, base.tech(), base.library());
  ASSERT_EQ(design.blockages.size(), 2u);
  EXPECT_EQ(design.blockages[0].layer, 0);
  EXPECT_EQ(design.blockages[1].layer, db::kInvalidId);
  EXPECT_EQ(design.blockages[1].rect, (geom::Rect{20, 20, 30, 30}));
}

// ---- guides -----------------------------------------------------------------

TEST(GuideIo, RoundTrip) {
  const auto db = crp::testing::makeTinyDatabase();
  std::vector<NetGuide> guides;
  guides.push_back(NetGuide{
      "n0",
      {GuideRect{geom::Rect{0, 0, 100, 100}, 0},
       GuideRect{geom::Rect{100, 0, 200, 100}, 1}}});
  guides.push_back(NetGuide{"n1", {GuideRect{geom::Rect{0, 0, 50, 50}, 2}}});

  std::ostringstream out;
  writeGuides(out, db, guides);
  const auto parsed = parseGuides(out.str(), db.tech());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].net, "n0");
  EXPECT_EQ(parsed[0].rects, guides[0].rects);
  EXPECT_EQ(parsed[1].net, "n1");
  EXPECT_EQ(parsed[1].rects, guides[1].rects);
}

TEST(GuideIo, MalformedLineThrows) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_THROW(parseGuides("n0\n(\n1 2 3\n)\n", db.tech()),
               std::runtime_error);
}

TEST(GuideIo, UnknownLayerThrows) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_THROW(parseGuides("n0\n(\n0 0 1 1 Metal99\n)\n", db.tech()),
               std::runtime_error);
}

// ---- malformed-input robustness -------------------------------------------------

class MalformedDef : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedDef, ThrowsInsteadOfCrashing) {
  const auto base = crp::testing::makeTinyDatabase();
  EXPECT_THROW(parseDef(GetParam(), base.tech(), base.library()),
               std::exception);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedDef,
    ::testing::Values(
        "DESIGN t ;\nDIEAREA ( 0 0 ( 10 10 ) ;\nEND DESIGN",     // bad paren
        "DESIGN t ;\nCOMPONENTS 1 ;\n- u1 INV_X1 + PLACED ( x 0 ) N ;\n"
        "END COMPONENTS\nEND DESIGN",                             // bad int
        "DESIGN t ;\nROW r core 0 0 N DO ;\nEND DESIGN",          // bad row
        "WHATEVER ;",                                              // unknown kw
        "DESIGN t ;\nNETS 1 ;\n- n ( ghost A ) ;\nEND NETS\n"
        "END DESIGN"));                                            // ghost comp

class MalformedLef : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedLef, ThrowsInsteadOfCrashing) {
  EXPECT_THROW(parseLef(GetParam()), std::exception);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedLef,
    ::testing::Values("GARBAGE ;",
                      "UNITS\n  DATABASE MICRONS abc ;\nEND UNITS",
                      "SITE s\n  SIZE x BY 2.0 ;\nEND s",
                      "MACRO m\n  SIZE 1 BY"));

TEST(DefParser, EmptyInputYieldsEmptyDesign) {
  const auto base = crp::testing::makeTinyDatabase();
  const auto design = parseDef("", base.tech(), base.library());
  EXPECT_TRUE(design.components.empty());
  EXPECT_TRUE(design.nets.empty());
}

TEST(LefParser, EmptyInputYieldsEmptyLibrary) {
  const auto [tech, lib] = parseLef("");
  EXPECT_EQ(tech.numLayers(), 0);
  EXPECT_EQ(lib.numMacros(), 0);
}

TEST(DefParser, CommentsIgnoredEverywhere) {
  const auto base = crp::testing::makeTinyDatabase();
  const std::string def =
      "# header comment\nDESIGN t ; # trailing\n"
      "DIEAREA ( 0 0 ) ( 10 10 ) ; # box\nEND DESIGN";
  const auto design = parseDef(def, base.tech(), base.library());
  EXPECT_EQ(design.name, "t");
  EXPECT_EQ(design.dieArea, (geom::Rect{0, 0, 10, 10}));
}

}  // namespace
}  // namespace crp::lefdef\n
