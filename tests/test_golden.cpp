// Golden end-to-end regression: the full CR&P flow on a small bmgen
// design with a fixed seed, fingerprinted (moves, costs, wirelength,
// schedule-independent counter totals — see RunReport::fingerprint)
// and compared against a checked-in golden JSON.
//
// The fingerprint must be identical across thread counts: the test
// runs the flow at --threads 1 and --threads 8 and requires equality
// before diffing against the golden file, so a nondeterminism bug
// fails here rather than silently updating a golden.
//
// Regenerate with scripts/update_goldens.sh (sets CRP_UPDATE_GOLDENS=1,
// which makes this test write the golden instead of asserting it).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bmgen/generator.hpp"
#include "crp/framework.hpp"
#include "db/legality.hpp"
#include "groute/global_router.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"

#ifndef CRP_GOLDEN_DIR
#error "CRP_GOLDEN_DIR must point at tests/golden"
#endif

namespace crp {
namespace {

bmgen::BenchmarkSpec goldenSpec() {
  bmgen::BenchmarkSpec spec;
  spec.name = "golden_small";
  spec.targetCells = 400;
  spec.hotspots = 2;
  spec.seed = 7;
  spec.utilization = 0.8;
  return spec;
}

/// Scenario goldens (docs/scenarios.md): the same flow over a design
/// with fixed macro blocks + routing blockages, and one with a quarter
/// of the cells double-height.  60x6-site macros guarantee interior
/// hard-blocked edges at any placement, so routes provably detour.
bmgen::BenchmarkSpec macroSpec() {
  bmgen::BenchmarkSpec spec;
  spec.name = "golden_macro";
  spec.targetCells = 300;
  spec.seed = 13;
  spec.utilization = 0.75;
  spec.hotspots = 1;
  spec.macroCount = 3;
  spec.macroWidthSites = 60;
  spec.macroRowSpan = 6;
  return spec;
}

bmgen::BenchmarkSpec multiRowSpec() {
  bmgen::BenchmarkSpec spec;
  spec.name = "golden_multirow";
  spec.targetCells = 300;
  spec.seed = 17;
  spec.utilization = 0.75;
  spec.hotspots = 1;
  spec.multiRowFrac = 0.25;
  return spec;
}

/// Runs the full flow (generate -> GR -> CR&P k=2) and returns the
/// deterministic fingerprint of the run report.  `routerThreads`
/// drives the conflict-free batch reroute engine (GR RRR rounds and
/// the UD phase); the determinism contract says it is value-exact.
obs::Json runFingerprint(const bmgen::BenchmarkSpec& spec, int threads,
                         int routerThreads = 1, int tileRows = 1,
                         int tileCols = 1) {
  obs::EnabledScope enabled(true);
  auto db = bmgen::generateBenchmark(spec);
  groute::GlobalRouterOptions routerOptions;
  routerOptions.routerThreads = routerThreads;
  groute::GlobalRouter router(db, routerOptions);
  router.run();
  core::CrpOptions options;
  options.iterations = 2;
  options.seed = 11;
  options.threads = threads;
  options.routerThreads = routerThreads;
  options.tileRows = tileRows;
  options.tileCols = tileCols;
  core::CrpFramework framework(db, router, options);
  framework.run();
  EXPECT_TRUE(db::isPlacementLegal(db));
  return framework.runReport().fingerprint();
}

std::string goldenPath() {
  return std::string(CRP_GOLDEN_DIR) + "/crp_small_fingerprint.json";
}

/// Shared body of the scenario goldens: router-thread independence
/// asserted first, then update-or-compare against `goldenFile`.
void checkScenarioGolden(const bmgen::BenchmarkSpec& spec,
                         const std::string& goldenFile) {
  const obs::Json serial = runFingerprint(spec, 1, /*routerThreads=*/1);
  const obs::Json parallel = runFingerprint(spec, 1, /*routerThreads=*/8);
  ASSERT_EQ(serial, parallel)
      << spec.name << ": --router-threads 1 vs 8 fingerprints diverge:\n"
      << serial.dump(2) << "\nvs\n"
      << parallel.dump(2);

  const std::string path = std::string(CRP_GOLDEN_DIR) + "/" + goldenFile;
  if (std::getenv("CRP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << serial.dump(2) << "\n";
    GTEST_SKIP() << "golden regenerated at " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run scripts/update_goldens.sh";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::Json golden = obs::Json::parse(buffer.str());
  EXPECT_EQ(serial, golden)
      << spec.name << " fingerprint drifted from golden.\ngolden:\n"
      << golden.dump(2) << "\ncurrent:\n"
      << serial.dump(2)
      << "\nIf the change is intentional, run scripts/update_goldens.sh";
}

TEST(Golden, CrpFlowFingerprintMatchesGolden) {
#ifdef CRP_OBS_DISABLED
  GTEST_SKIP() << "golden fingerprints need the observability counters "
                  "(-DCRP_OBS=ON)";
#endif
  const obs::Json single = runFingerprint(goldenSpec(), 1);
  const obs::Json parallel = runFingerprint(goldenSpec(), 8);
  // Thread-count independence first: a scheduling leak would otherwise
  // masquerade as a golden mismatch (or worse, get baked into one).
  ASSERT_EQ(single, parallel)
      << "--threads 1 vs --threads 8 fingerprints diverge:\n"
      << single.dump(2) << "\nvs\n"
      << parallel.dump(2);

  if (std::getenv("CRP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(goldenPath());
    ASSERT_TRUE(out) << "cannot write " << goldenPath();
    out << single.dump(2) << "\n";
    GTEST_SKIP() << "golden regenerated at " << goldenPath();
  }

  std::ifstream in(goldenPath());
  ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                  << " — run scripts/update_goldens.sh";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::Json golden = obs::Json::parse(buffer.str());
  EXPECT_EQ(single, golden)
      << "fingerprint drifted from golden.\ngolden:\n"
      << golden.dump(2) << "\ncurrent:\n"
      << single.dump(2)
      << "\nIf the change is intentional, run scripts/update_goldens.sh";
}

// The router-thread knob must also be value-exact: the conflict-free
// batch plan is computed sequentially and batch members touch disjoint
// graph regions, so the whole-flow fingerprint — demand maps, routes,
// moves — is bit-identical at 1 vs 8 router threads, and both match
// the checked-in golden.
TEST(Golden, RouterThreadCountIndependence) {
#ifdef CRP_OBS_DISABLED
  GTEST_SKIP() << "golden fingerprints need the observability counters "
                  "(-DCRP_OBS=ON)";
#endif
  const obs::Json serial = runFingerprint(goldenSpec(), 1, /*routerThreads=*/1);
  const obs::Json parallel =
      runFingerprint(goldenSpec(), 1, /*routerThreads=*/8);
  ASSERT_EQ(serial, parallel)
      << "--router-threads 1 vs 8 fingerprints diverge:\n"
      << serial.dump(2) << "\nvs\n"
      << parallel.dump(2);

  if (std::getenv("CRP_UPDATE_GOLDENS") != nullptr) {
    GTEST_SKIP() << "golden handled by CrpFlowFingerprintMatchesGolden";
  }
  std::ifstream in(goldenPath());
  ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                  << " — run scripts/update_goldens.sh";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::Json golden = obs::Json::parse(buffer.str());
  EXPECT_EQ(parallel, golden)
      << "parallel-reroute fingerprint drifted from golden.\ngolden:\n"
      << golden.dump(2) << "\ncurrent:\n"
      << parallel.dump(2);
}

// The chip-tile decomposition (docs/tiling.md) must also be value-
// exact against the same golden: tiling the UD reroutes, GCP windows
// and ECC pricing over a 2x2 (and 1x8) grid at 8 router threads is a
// scheduling refinement, so the seed fingerprint stays byte-identical
// with tiling on.
TEST(Golden, TileGridIndependence) {
#ifdef CRP_OBS_DISABLED
  GTEST_SKIP() << "golden fingerprints need the observability counters "
                  "(-DCRP_OBS=ON)";
#endif
  const obs::Json tiled2x2 =
      runFingerprint(goldenSpec(), 1, /*routerThreads=*/8, 2, 2);
  const obs::Json tiled1x8 =
      runFingerprint(goldenSpec(), 1, /*routerThreads=*/8, 1, 8);
  ASSERT_EQ(tiled2x2, tiled1x8)
      << "2x2 vs 1x8 tile grids diverge:\n"
      << tiled2x2.dump(2) << "\nvs\n"
      << tiled1x8.dump(2);

  if (std::getenv("CRP_UPDATE_GOLDENS") != nullptr) {
    GTEST_SKIP() << "golden handled by CrpFlowFingerprintMatchesGolden";
  }
  std::ifstream in(goldenPath());
  ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                  << " — run scripts/update_goldens.sh";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::Json golden = obs::Json::parse(buffer.str());
  EXPECT_EQ(tiled2x2, golden)
      << "tiled fingerprint drifted from the untiled golden.\ngolden:\n"
      << golden.dump(2) << "\ncurrent:\n"
      << tiled2x2.dump(2);
}

// Scenario goldens: the macro-heavy design (fixed blocks, hard-blocked
// interiors, routing blockages) and the mixed-height design each pin
// their own end-to-end fingerprint, with router-thread independence
// asserted before any golden comparison — exactly the protocol of the
// base golden, extended along the workload axes of docs/scenarios.md.
TEST(Golden, MacroHeavyFlowMatchesGoldenAndIsThreadIndependent) {
#ifdef CRP_OBS_DISABLED
  GTEST_SKIP() << "golden fingerprints need the observability counters "
                  "(-DCRP_OBS=ON)";
#endif
  checkScenarioGolden(macroSpec(), "crp_macro_fingerprint.json");
}

TEST(Golden, MixedHeightFlowMatchesGoldenAndIsThreadIndependent) {
#ifdef CRP_OBS_DISABLED
  GTEST_SKIP() << "golden fingerprints need the observability counters "
                  "(-DCRP_OBS=ON)";
#endif
  checkScenarioGolden(multiRowSpec(), "crp_multirow_fingerprint.json");
}

// The spatial tier obeys the same contract: heatmap snapshots are
// exact sums over committed routes, so the delta-encoded series (and
// the timeline-bearing report fingerprint) captured at 1 vs 8 router
// threads must be byte-identical.  The snapshot-free fingerprint is
// covered above; this test proves turning snapshots ON adds no
// schedule dependence.
TEST(Golden, SpatialSnapshotsAreRouterThreadIndependent) {
#ifdef CRP_OBS_DISABLED
  GTEST_SKIP() << "spatial snapshots need the observability tier "
                  "(-DCRP_OBS=ON)";
#else
  struct SpatialRun {
    std::string heatmaps;
    obs::Json fingerprint;
    std::size_t snapshots = 0;
  };
  const auto runSpatial = [](int routerThreads) {
    obs::EnabledScope enabled(true);
    obs::resetAll();
    auto db = bmgen::generateBenchmark(goldenSpec());
    groute::GlobalRouterOptions routerOptions;
    routerOptions.routerThreads = routerThreads;
    groute::GlobalRouter router(db, routerOptions);
    router.run();
    core::CrpOptions options;
    options.iterations = 2;
    options.seed = 11;
    options.routerThreads = routerThreads;
    options.snapshots = true;
    core::CrpFramework framework(db, router, options);
    framework.run();
    SpatialRun run;
    run.heatmaps = framework.heatmaps().toJson().dump(2);
    run.fingerprint = framework.runReport().fingerprint();
    run.snapshots = framework.heatmaps().size();
    obs::resetAll();
    return run;
  };

  const SpatialRun serial = runSpatial(1);
  const SpatialRun parallel = runSpatial(8);
  EXPECT_EQ(serial.snapshots, 3u);  // post-gr + one per iteration (k=2)
  EXPECT_EQ(serial.heatmaps, parallel.heatmaps)
      << "heatmap series diverge between 1 and 8 router threads";
  ASSERT_EQ(serial.fingerprint, parallel.fingerprint)
      << "timeline-bearing fingerprints diverge:\n"
      << serial.fingerprint.dump(2) << "\nvs\n"
      << parallel.fingerprint.dump(2);
  // The timeline joined the fingerprint (spatial tier on), so it must
  // differ from the timeline-free golden — additive, not silent.
  EXPECT_NE(serial.fingerprint.find("timeline"), nullptr);
#endif
}

}  // namespace
}  // namespace crp
