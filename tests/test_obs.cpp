// Observability subsystem tests: JSON layer, metrics registry under
// concurrency, span tracer well-formedness, Chrome trace export, and
// the versioned RunReport schema.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crp/framework.hpp"  // core::kPhases for the schema test
#include "obs/analytics.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heatmap.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"
#include "obs/run_ledger.hpp"
#include "obs/run_report.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace crp::obs {
namespace {

// ---- Json ------------------------------------------------------------------

TEST(Json, IntRoundTripIsExact) {
  // Counters must survive serialization bit-for-bit.
  const std::int64_t big = 9007199254740993;  // not representable as double
  Json j = Json::object();
  j.set("v", big);
  const Json parsed = Json::parse(j.dump());
  EXPECT_EQ(parsed.at("v").asInt(), big);
}

TEST(Json, DoubleRoundTrips) {
  Json j = Json::object();
  j.set("a", 0.1);
  j.set("b", 3.0);
  j.set("c", -2.5e-7);
  const Json parsed = Json::parse(j.dump(2));
  EXPECT_DOUBLE_EQ(parsed.at("a").asDouble(), 0.1);
  EXPECT_DOUBLE_EQ(parsed.at("b").asDouble(), 3.0);
  EXPECT_DOUBLE_EQ(parsed.at("c").asDouble(), -2.5e-7);
  // A written double stays typed kDouble after parsing (".0" marker).
  EXPECT_EQ(parsed.at("b").type(), Json::Type::kDouble);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json j = Json::object();
  j.set("zulu", 1);
  j.set("alpha", 2);
  j.set("mike", 3);
  const std::string text = j.dump();
  EXPECT_LT(text.find("zulu"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("mike"));
}

TEST(Json, StringEscapes) {
  Json j = Json::object();
  j.set("s", std::string("a\"b\\c\n\tx\x01y"));
  const Json parsed = Json::parse(j.dump());
  EXPECT_EQ(parsed.at("s").asString(), "a\"b\\c\n\tx\x01y");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1, 2,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\": 1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse(""), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("{\"a\": \"text\"}");
  EXPECT_THROW(j.at("a").asInt(), JsonError);
  EXPECT_THROW(j.at("missing"), JsonError);
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, StructuralEquality) {
  const Json a = Json::parse("{\"x\": [1, 2.5, \"s\"], \"y\": null}");
  const Json b = Json::parse("{\"x\": [1, 2.5, \"s\"], \"y\": null}");
  const Json c = Json::parse("{\"x\": [1, 2.5, \"t\"], \"y\": null}");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// ---- metrics ---------------------------------------------------------------

TEST(Metrics, CounterConcurrentAddsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("test.hammer");
  util::ThreadPool pool(8);
  constexpr int kTasks = 10000;
  pool.parallelFor(kTasks, [&](std::size_t) { counter->add(3); });
  EXPECT_EQ(counter->value(), static_cast<std::uint64_t>(kTasks) * 3);
}

TEST(Metrics, HistogramConcurrentRecordsAreExact) {
  MetricsRegistry registry;
  Histogram* hist = registry.histogram("test.hist", {10, 100, 1000});
  util::ThreadPool pool(8);
  constexpr int kTasks = 8000;
  pool.parallelFor(kTasks, [&](std::size_t i) { hist->record(i % 2000); });
  EXPECT_EQ(hist->count(), static_cast<std::uint64_t>(kTasks));
  const auto buckets = hist->bucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // three bounds + overflow
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kTasks));
  // i % 2000: values 0..10 land in bucket 0 (11 of each 2000-cycle).
  EXPECT_EQ(buckets[0], static_cast<std::uint64_t>(kTasks / 2000) * 11);
  // 1001..1999 overflow.
  EXPECT_EQ(buckets[3], static_cast<std::uint64_t>(kTasks / 2000) * 999);
}

TEST(Metrics, InstrumentPointersAreStableAcrossReset) {
  MetricsRegistry registry;
  Counter* before = registry.counter("stable");
  before->add(7);
  registry.reset();
  Counter* after = registry.counter("stable");
  EXPECT_EQ(before, after);
  EXPECT_EQ(after->value(), 0u);
}

TEST(Metrics, SnapshotDeltaSubtractsCounters) {
  MetricsRegistry registry;
  registry.counter("a")->add(5);
  const MetricsSnapshot earlier = registry.snapshot();
  registry.counter("a")->add(2);
  registry.counter("b")->add(9);
  const MetricsSnapshot delta = registry.snapshot().deltaSince(earlier);
  EXPECT_EQ(delta.counters.at("a"), 2u);
  EXPECT_EQ(delta.counters.at("b"), 9u);
}

TEST(Metrics, SnapshotToJsonIsParseable) {
  MetricsRegistry registry;
  registry.counter("c")->add(1);
  registry.gauge("g")->set(2.5);
  registry.histogram("h")->record(4);
  const Json j = Json::parse(registry.snapshot().toJson().dump(2));
  EXPECT_EQ(j.at("counters").at("c").asInt(), 1);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("g").asDouble(), 2.5);
  EXPECT_EQ(j.at("histograms").at("h").at("count").asInt(), 1);
}

// ---- tracer ----------------------------------------------------------------

/// Asserts the per-thread (beginSeq, endSeq) intervals form a balanced
/// nesting: every sequence number used exactly once, and any two spans
/// on one thread are either disjoint or fully nested.
void expectWellFormedNesting(
    const std::vector<std::pair<int, SpanRecord>>& records) {
  std::map<int, std::vector<const SpanRecord*>> byThread;
  for (const auto& [tid, span] : records) byThread[tid].push_back(&span);
  for (const auto& [tid, spans] : byThread) {
    std::set<std::uint64_t> seqs;
    for (const SpanRecord* s : spans) {
      EXPECT_LT(s->beginSeq, s->endSeq) << "tid " << tid;
      EXPECT_TRUE(seqs.insert(s->beginSeq).second);
      EXPECT_TRUE(seqs.insert(s->endSeq).second);
    }
    // Sequence numbers are dense: 0..2n-1.
    EXPECT_EQ(seqs.size(), spans.size() * 2);
    if (!seqs.empty()) {
      EXPECT_EQ(*seqs.begin(), 0u);
      EXPECT_EQ(*seqs.rbegin(), spans.size() * 2 - 1);
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const SpanRecord* a = spans[i];
        const SpanRecord* b = spans[j];
        const bool disjoint =
            a->endSeq < b->beginSeq || b->endSeq < a->beginSeq;
        const bool aInB =
            b->beginSeq < a->beginSeq && a->endSeq < b->endSeq;
        const bool bInA =
            a->beginSeq < b->beginSeq && b->endSeq < a->endSeq;
        EXPECT_TRUE(disjoint || aInB || bInA)
            << "crossing spans " << a->name << " and " << b->name;
      }
    }
  }
}

TEST(Tracer, RecordsNestedSpans) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer", "test");
    {
      ScopedSpan inner(&tracer, "inner", "test", 42);
    }
  }
  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  expectWellFormedNesting(records);
  // Inner closes first, so it is appended first.
  EXPECT_EQ(records[0].second.name, "inner");
  EXPECT_EQ(records[0].second.depth, 1);
  EXPECT_EQ(records[0].second.arg, 42);
  EXPECT_EQ(records[1].second.name, "outer");
  EXPECT_EQ(records[1].second.depth, 0);
  EXPECT_EQ(records[1].second.arg, -1);
}

TEST(Tracer, NullTracerSpanIsNoOp) {
  ScopedSpan span(nullptr, "ignored", "test");
  // Nothing to assert beyond "does not crash" — the disabled path.
}

TEST(Tracer, ConcurrentSpansStayPerThreadWellFormed) {
  Tracer tracer;
  util::ThreadPool pool(8);
  constexpr int kTasks = 2000;
  pool.parallelFor(kTasks, [&](std::size_t i) {
    ScopedSpan outer(&tracer, "outer", "test",
                     static_cast<std::int64_t>(i));
    ScopedSpan inner(&tracer, "inner", "test");
  });
  const auto records = tracer.records();
  EXPECT_EQ(records.size(), static_cast<std::size_t>(kTasks) * 2);
  expectWellFormedNesting(records);
}

TEST(Tracer, ChromeTraceExportIsValidJson) {
  Tracer tracer;
  {
    ScopedSpan a(&tracer, "phase", "crp", 3);
    ScopedSpan b(&tracer, "net", "groute");
  }
  std::ostringstream os;
  tracer.writeChromeTrace(os);
  const Json doc = Json::parse(os.str());
  const auto& events = doc.at("traceEvents").asArray();
  ASSERT_EQ(events.size(), 2u);
  for (const Json& event : events) {
    EXPECT_EQ(event.at("ph").asString(), "X");
    EXPECT_GE(event.at("dur").asDouble(), 0.0);
    EXPECT_EQ(event.at("pid").asInt(), 1);
  }
  EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
}

TEST(Tracer, ClearDropsRecords) {
  Tracer tracer;
  { ScopedSpan s(&tracer, "x", "test"); }
  EXPECT_EQ(tracer.records().size(), 1u);
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
}

// ---- macros / runtime switch ----------------------------------------------

#ifndef CRP_OBS_DISABLED
TEST(ObsMacros, DisabledFlagSuppressesRecording) {
  resetAll();
  EnabledScope scope(false);
  CRP_OBS_COUNT("macro.disabled", 1);
  { CRP_OBS_SPAN("test", "macro.disabled.span"); }
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  const auto it = snap.counters.find("macro.disabled");
  EXPECT_TRUE(it == snap.counters.end() || it->second == 0);
  EXPECT_TRUE(Tracer::instance().records().empty());
}

TEST(ObsMacros, EnabledFlagRecords) {
  resetAll();
  EnabledScope scope(true);
  CRP_OBS_COUNT("macro.enabled", 2);
  CRP_OBS_COUNT("macro.enabled", 3);
  { CRP_OBS_SPAN_ARG("test", "macro.enabled.span", 7); }
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("macro.enabled"), 5u);
  const auto records = Tracer::instance().records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second.name, "macro.enabled.span");
  EXPECT_EQ(records[0].second.arg, 7);
  resetAll();
}

TEST(ObsMacros, ConcurrentMacroCountsAreExact) {
  resetAll();
  EnabledScope scope(true);
  util::ThreadPool pool(8);
  constexpr int kTasks = 10000;
  pool.parallelFor(kTasks, [&](std::size_t) {
    CRP_OBS_COUNT("macro.concurrent", 1);
  });
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("macro.concurrent"),
            static_cast<std::uint64_t>(kTasks));
  resetAll();
}
#endif  // CRP_OBS_DISABLED

// ---- per-session contexts --------------------------------------------------

TEST(ObsContext, IdsAreUniqueAndNeverZero) {
  ObsContext a;
  ObsContext b;
  EXPECT_NE(a.id(), 0u);
  EXPECT_NE(b.id(), 0u);
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), ObsContext::defaultContext().id());
}

TEST(ObsContext, AmbientResolutionFallsBackToDefault) {
  EXPECT_EQ(&currentContext(), &ObsContext::defaultContext());
  ObsContext session;
  {
    ObsContextScope scope(session);
    EXPECT_EQ(&currentContext(), &session);
    ObsContext inner;
    {
      ObsContextScope nested(inner);
      EXPECT_EQ(&currentContext(), &inner);
    }
    EXPECT_EQ(&currentContext(), &session);
  }
  EXPECT_EQ(&currentContext(), &ObsContext::defaultContext());
}

TEST(ObsContext, NullScopeIsANoOp) {
  ObsContext session;
  ObsContextScope outer(session);
  ObsContextScope noop(static_cast<ObsContext*>(nullptr));
  EXPECT_EQ(&currentContext(), &session);
}

TEST(ObsContext, ResetIsScopedToOneContext) {
  ObsContext a;
  ObsContext b;
  a.metrics().counter("ctx.reset")->add(3);
  b.metrics().counter("ctx.reset")->add(5);
  a.reset();
  EXPECT_EQ(a.metrics().counter("ctx.reset")->value(), 0u);
  EXPECT_EQ(b.metrics().counter("ctx.reset")->value(), 5u);
}

TEST(ObsContext, DeprecatedResetAllOnlyClearsCurrentContext) {
  ObsContext session;
  ObsContext bystander;
  bystander.metrics().counter("ctx.bystander")->add(7);
  {
    ObsContextScope scope(session);
    session.metrics().counter("ctx.bystander")->add(1);
    resetAll();  // the legacy shim: scoped, not process-global
    EXPECT_EQ(session.metrics().counter("ctx.bystander")->value(), 0u);
  }
  EXPECT_EQ(bystander.metrics().counter("ctx.bystander")->value(), 7u);
}

#ifndef CRP_OBS_DISABLED
TEST(ObsContext, MacrosRecordIntoTheAmbientContext) {
  ObsContext a;
  ObsContext b;
  a.setEnabled(true);
  b.setEnabled(true);
  // One lambda = one macro call site: its thread-local instrument
  // cache must re-resolve when the ambient context changes.
  const auto hit = [] { CRP_OBS_COUNT("ctx.macro", 1); };
  {
    ObsContextScope scope(a);
    hit();
    hit();
  }
  {
    ObsContextScope scope(b);
    hit();
  }
  EXPECT_EQ(a.metrics().counter("ctx.macro")->value(), 2u);
  EXPECT_EQ(b.metrics().counter("ctx.macro")->value(), 1u);
}

TEST(ObsContext, DisabledContextSuppressesMacros) {
  ObsContext session;  // enabled() defaults to false
  {
    ObsContextScope scope(session);
    CRP_OBS_COUNT("ctx.disabled", 1);
  }
  const MetricsSnapshot snap = session.metrics().snapshot();
  const auto it = snap.counters.find("ctx.disabled");
  EXPECT_TRUE(it == snap.counters.end() || it->second == 0);
}

TEST(ObsContext, PoolWorkersInheritTheSubmittersContext) {
  ObsContext session;
  session.setEnabled(true);
  util::ThreadPool pool(4);
  constexpr int kTasks = 2000;
  {
    ObsContextScope scope(session);
    pool.parallelFor(kTasks, [](std::size_t) {
      CRP_OBS_COUNT("ctx.pool", 1);
    });
  }
  EXPECT_EQ(session.metrics().counter("ctx.pool")->value(),
            static_cast<std::uint64_t>(kTasks));
  const MetricsSnapshot defaults =
      ObsContext::defaultContext().metrics().snapshot();
  const auto it = defaults.counters.find("ctx.pool");
  EXPECT_TRUE(it == defaults.counters.end() || it->second == 0);
}

TEST(ObsContext, ConcurrentScopedCountsStayIsolated) {
  ObsContext a;
  ObsContext b;
  a.setEnabled(true);
  b.setEnabled(true);
  constexpr int kPerThread = 5000;
  const auto worker = [](ObsContext& ctx) {
    ObsContextScope scope(ctx);
    for (int i = 0; i < kPerThread; ++i) {
      CRP_OBS_COUNT("ctx.race", 1);
    }
  };
  std::thread ta(worker, std::ref(a));
  std::thread tb(worker, std::ref(b));
  ta.join();
  tb.join();
  EXPECT_EQ(a.metrics().counter("ctx.race")->value(),
            static_cast<std::uint64_t>(kPerThread));
  EXPECT_EQ(b.metrics().counter("ctx.race")->value(),
            static_cast<std::uint64_t>(kPerThread));
}
#endif  // CRP_OBS_DISABLED

// ---- RunReport schema ------------------------------------------------------

RunReport sampleReport() {
  RunReport report;
  report.iterations = 2;
  report.threads = 4;
  report.seed = 11;
  for (const char* phase : core::kPhases) {
    report.phases.push_back(RunReport::PhaseStat{phase, 0.25});
  }
  RunReport::IterationStat it;
  it.criticalCells = 10;
  it.movedCells = 4;
  it.displacedCells = 1;
  it.reroutedNets = 9;
  it.selectedCost = 123.5;
  it.netsPriced = 777;
  report.iterationStats.push_back(it);
  report.pricing.cacheHits = 500;
  report.pricing.cacheMisses = 200;
  report.pricing.deltaSkips = 77;
  report.ilp.solves = 12;
  report.ilp.nodes = 340;
  report.ilp.lpCalls = 350;
  report.ilp.lpPivots = 4200;
  report.router.wirelengthDbu = 987654321;
  report.router.vias = 4321;
  report.router.totalOverflow = 1.5;
  report.router.overflowedEdges = 3;
  report.router.openNets = 0;
  report.router.reroutedNets = 17;
  report.totalMoves = 5;
  report.totalReroutes = 9;
  report.counters["ilp.solves"] = 12;
  return report;
}

TEST(RunReportSchema, RoundTripsThroughJson) {
  const RunReport report = sampleReport();
  const Json serialized = Json::parse(report.toJson().dump(2));
  const RunReport parsed = RunReport::fromJson(serialized);
  EXPECT_EQ(parsed.toJson(), report.toJson());
  EXPECT_EQ(parsed.pricing.netsPriced(), report.pricing.netsPriced());
  EXPECT_EQ(parsed.ilp.lpPivots, report.ilp.lpPivots);
  EXPECT_EQ(parsed.router.wirelengthDbu, report.router.wirelengthDbu);
  EXPECT_DOUBLE_EQ(parsed.phaseSeconds(core::kPhaseEcc), 0.25);
}

TEST(RunReportSchema, RejectsUnknownSchemaVersion) {
  Json j = sampleReport().toJson();
  j.set("schemaVersion", RunReport::kSchemaVersion + 1);
  EXPECT_THROW(RunReport::fromJson(j), JsonError);
  j.set("schemaVersion", 0);
  EXPECT_THROW(RunReport::fromJson(j), JsonError);
}

TEST(RunReportSchema, RejectsMissingFields) {
  Json j = Json::object();
  j.set("schemaVersion", RunReport::kSchemaVersion);
  EXPECT_THROW(RunReport::fromJson(j), JsonError);
}

TEST(RunReportSchema, EveryPhaseConstantAppearsExactlyOnce) {
  // The report is the single source of phase names: each core phase
  // constant appears exactly once, in flow order.
  const RunReport report = sampleReport();
  const Json j = report.toJson();
  const auto& phases = j.at("phases").asArray();
  ASSERT_EQ(phases.size(), static_cast<std::size_t>(core::kNumPhases));
  for (int i = 0; i < core::kNumPhases; ++i) {
    int count = 0;
    for (const Json& p : phases) {
      if (p.at("name").asString() == core::kPhases[i]) ++count;
    }
    EXPECT_EQ(count, 1) << core::kPhases[i];
    EXPECT_EQ(phases[i].at("name").asString(), core::kPhases[i]);
  }
}

TEST(RunReportSchema, FingerprintExcludesWallClockAndRacySplits) {
  RunReport a = sampleReport();
  RunReport b = sampleReport();
  // Wall clock, thread count, and the hit/miss split differ between
  // runs; the fingerprint must not.
  b.threads = 1;
  for (auto& phase : b.phases) phase.seconds *= 10.0;
  b.pricing.cacheHits = a.pricing.cacheHits + 50;
  b.pricing.cacheMisses = a.pricing.cacheMisses - 50;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // A real behavioral difference does change it.
  b.totalMoves += 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(RunReportSchema, FormatUsesReportPhaseNames) {
  const std::string text = formatRunReport(sampleReport());
  for (const char* phase : core::kPhases) {
    EXPECT_NE(text.find(phase), std::string::npos) << phase;
  }
  EXPECT_NE(text.find("nets priced"), std::string::npos);
}

// ---- histogram re-registration policy --------------------------------------

TEST(Metrics, HistogramBoundMismatchIsCounted) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug builds assert on the mismatch instead of counting";
#else
  MetricsRegistry registry;
  Histogram* first = registry.histogram("policy.hist", {10, 100});
  // Same name, different bounds: first registration wins, but the
  // conflict is surfaced through the mismatch counter instead of being
  // silently ignored.
  Histogram* second = registry.histogram("policy.hist", {1, 2, 3});
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->bounds(), (std::vector<std::uint64_t>{10, 100}));
  EXPECT_EQ(registry.counter(MetricsRegistry::kBoundMismatchCounter)->value(),
            1u);
  // Re-registering with identical (or omitted) bounds is the supported
  // lookup path and must not count as a mismatch.
  registry.histogram("policy.hist", {10, 100});
  registry.histogram("policy.hist");
  EXPECT_EQ(registry.counter(MetricsRegistry::kBoundMismatchCounter)->value(),
            1u);
#endif
}

// ---- heatmap snapshots -----------------------------------------------------

/// 3x2 grid, one horizontal layer: wire edges live at x=0,1 (lower
/// endpoint indexing), the x=2 column carries no edge.
HeatmapSnapshot sampleSnapshot() {
  HeatmapSnapshot snap;
  snap.label = "post-gr";
  snap.iteration = -1;
  snap.width = 3;
  snap.height = 2;
  snap.numLayers = 1;
  HeatmapSnapshot::Plane demand;
  demand.kind = HeatmapSnapshot::kWireDemand;
  demand.layer = 0;
  demand.horizontal = true;
  demand.values = {1.0, 2.0, 0.0, 0.5, 3.0, 0.0};
  HeatmapSnapshot::Plane cap = demand;
  cap.kind = HeatmapSnapshot::kWireCapacity;
  cap.values = {2.0, 2.0, 0.0, 2.0, 2.0, 0.0};
  snap.planes = {std::move(demand), std::move(cap)};
  snap.totalOverflow = 1.0;
  snap.maxOverflow = 1.0;
  snap.overflowedEdges = 1;
  return snap;
}

TEST(Heatmap, JsonRoundTripIsExact) {
  const HeatmapSnapshot snap = sampleSnapshot();
  const HeatmapSnapshot parsed =
      HeatmapSnapshot::fromJson(Json::parse(snap.toJson().dump(2)));
  EXPECT_EQ(parsed.toJson(), snap.toJson());
  ASSERT_NE(parsed.findPlane(HeatmapSnapshot::kWireDemand, 0), nullptr);
  EXPECT_EQ(parsed.findPlane(HeatmapSnapshot::kWireDemand, 0)->values,
            snap.planes[0].values);
  EXPECT_EQ(parsed.findPlane("via.demand", 0), nullptr);
}

TEST(Heatmap, RejectsUnknownSchemaVersion) {
  Json j = sampleSnapshot().toJson();
  j.set("schemaVersion", HeatmapSnapshot::kSchemaVersion + 1);
  EXPECT_THROW(HeatmapSnapshot::fromJson(j), JsonError);
}

TEST(Heatmap, UtilisationGridAveragesTouchingEdges) {
  // Each edge charges demand/cap to both gcells it touches; gcells
  // average over their incident edges (the groute CongestionMap math).
  const UtilisationGrid grid = utilisationGrid(sampleSnapshot());
  ASSERT_EQ(grid.width, 3);
  ASSERT_EQ(grid.height, 2);
  EXPECT_DOUBLE_EQ(grid.at(0, 0), 0.5);            // edge (0,0) only
  EXPECT_DOUBLE_EQ(grid.at(1, 0), (0.5 + 1.0) / 2);
  EXPECT_DOUBLE_EQ(grid.at(2, 0), 1.0);            // edge (1,0) only
  EXPECT_DOUBLE_EQ(grid.at(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(grid.at(1, 1), (0.25 + 1.5) / 2);
  EXPECT_DOUBLE_EQ(grid.at(2, 1), 1.5);            // overflowed edge
}

TEST(Heatmap, GlyphScaleSaturates) {
  EXPECT_EQ(utilisationGlyph(0.0), '.');
  EXPECT_EQ(utilisationGlyph(1.0), '#');
  EXPECT_EQ(utilisationGlyph(25.0), '#');  // overflow clamps to '#'
  EXPECT_EQ(utilisationGlyph(-0.5), '.');
}

TEST(Heatmap, AsciiRenderPutsHighestYOnTop) {
  std::ostringstream os;
  renderHeatmapAscii(os, sampleSnapshot());
  std::istringstream lines(os.str());
  std::string top, bottom;
  ASSERT_TRUE(std::getline(lines, top));
  ASSERT_TRUE(std::getline(lines, bottom));
  ASSERT_EQ(top.size(), 3u);
  // y=1 row: (2,1) is overflowed -> '#'; y=0 row: (2,0) = 1.0 -> '#',
  // (0,0) = 0.5 sits mid-scale.
  EXPECT_EQ(top[2], '#');
  EXPECT_EQ(bottom[0], utilisationGlyph(0.5));
}

TEST(Heatmap, PpmWriterEmitsOnePixelPerGcell) {
  std::ostringstream os;
  writeHeatmapPpm(os, sampleSnapshot());
  std::istringstream in(os.str());
  std::string magic;
  int width = 0, height = 0, maxVal = 0;
  in >> magic >> width >> height >> maxVal;
  EXPECT_EQ(magic, "P3");
  EXPECT_EQ(width, 3);
  EXPECT_EQ(height, 2);
  EXPECT_EQ(maxVal, 255);
  int samples = 0, value = 0;
  while (in >> value) {
    EXPECT_GE(value, 0);
    EXPECT_LE(value, 255);
    ++samples;
  }
  EXPECT_EQ(samples, 3 * 2 * 3);  // rgb per gcell
}

// ---- heatmap series (delta encoding) ---------------------------------------

TEST(HeatmapSeries, ReconstructsEverySnapshotExactly) {
  HeatmapSnapshot s0 = sampleSnapshot();
  HeatmapSnapshot s1 = s0;
  s1.label = "iter0";
  s1.iteration = 0;
  s1.planes[0].values[4] = 2.0;  // the rerouted edge
  s1.totalOverflow = 0.0;
  s1.maxOverflow = 0.0;
  s1.overflowedEdges = 0;
  HeatmapSnapshot s2 = s1;
  s2.label = "iter1";
  s2.iteration = 1;
  s2.planes[0].values[0] = 1.5;

  HeatmapSeries series;
  series.add(s0);
  series.add(s1);
  series.add(s2);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series.snapshot(0).toJson(), s0.toJson());
  EXPECT_EQ(series.snapshot(1).toJson(), s1.toJson());
  EXPECT_EQ(series.snapshot(2).toJson(), s2.toJson());
  EXPECT_EQ(series.latest().toJson(), s2.toJson());
}

TEST(HeatmapSeries, DeltaEncodingStoresOnlyChangedCells) {
  HeatmapSnapshot s0 = sampleSnapshot();
  HeatmapSnapshot s1 = s0;
  s1.iteration = 0;
  s1.planes[0].values[4] = 2.0;  // exactly one cell changes

  HeatmapSeries series;
  series.add(s0);
  series.add(s1);
  const Json j = series.toJson();
  const auto& deltas = j.at("deltas").asArray();
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].at("changes").asArray().size(), 1u);
}

TEST(HeatmapSeries, JsonRoundTripPreservesReconstruction) {
  HeatmapSnapshot s0 = sampleSnapshot();
  HeatmapSnapshot s1 = s0;
  s1.iteration = 0;
  s1.planes[0].values[1] = 0.5;

  HeatmapSeries series;
  series.add(s0);
  series.add(s1);
  const HeatmapSeries parsed =
      HeatmapSeries::fromJson(Json::parse(series.toJson().dump(2)));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.snapshot(0).toJson(), s0.toJson());
  EXPECT_EQ(parsed.snapshot(1).toJson(), s1.toJson());
  EXPECT_EQ(parsed.latest().toJson(), s1.toJson());
  EXPECT_EQ(parsed.toJson(), series.toJson());
}

TEST(HeatmapSeries, EmptySeriesRoundTrips) {
  const HeatmapSeries series;
  EXPECT_TRUE(series.empty());
  const HeatmapSeries parsed =
      HeatmapSeries::fromJson(Json::parse(series.toJson().dump()));
  EXPECT_TRUE(parsed.empty());
}

// ---- flight recorder -------------------------------------------------------

TEST(FlightRecorder, RingKeepsMostRecentEventsInOrder) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record("test", "event" + std::to_string(i), i);
  }
  EXPECT_EQ(recorder.totalRecorded(), 10u);
  const std::vector<FlightEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 4u);  // bounded by capacity
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);  // oldest-first, newest retained
    EXPECT_EQ(events[i].value, static_cast<std::int64_t>(6 + i));
  }
}

TEST(FlightRecorder, DumpCarriesTriggerEventsAndHeatmap) {
  FlightRecorder recorder(8);
  recorder.record("crp", "phase.LCC", 0);
  recorder.record("crp", "commit", 3);
  recorder.setLatestHeatmap(sampleSnapshot().toJson());

  Json trigger = Json::object();
  trigger.set("source", "test");
  const Json dump = Json::parse(recorder.dump(std::move(trigger)).dump(2));
  EXPECT_EQ(dump.at("schemaVersion").asInt(), FlightRecorder::kSchemaVersion);
  EXPECT_EQ(dump.at("trigger").at("source").asString(), "test");
  EXPECT_EQ(dump.at("eventsRecorded").asUint(), 2u);
  const auto& events = dump.at("events").asArray();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("label").asString(), "phase.LCC");
  EXPECT_EQ(events[1].at("value").asInt(), 3);
  // The attached heatmap decodes back into a snapshot.
  const HeatmapSnapshot heatmap =
      HeatmapSnapshot::fromJson(dump.at("latestHeatmap"));
  EXPECT_EQ(heatmap.toJson(), sampleSnapshot().toJson());
}

TEST(FlightRecorder, ClearDropsEventsAndHeatmap) {
  FlightRecorder recorder(4);
  recorder.record("a", "b", 1);
  recorder.setLatestHeatmap(sampleSnapshot().toJson());
  recorder.clear();
  EXPECT_EQ(recorder.totalRecorded(), 0u);
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_TRUE(recorder.dump(Json::object()).at("latestHeatmap").isNull());
}

TEST(FlightRecorder, ConcurrentAppendsStayBoundedAndWellFormed) {
  // The TSan leg runs this case: many threads hammering record() while
  // a reader snapshots the ring must stay race-free.
  FlightRecorder recorder(64);
  util::ThreadPool pool(8);
  constexpr int kTasks = 4000;
  pool.parallelFor(kTasks, [&](std::size_t i) {
    recorder.record("stress", "append", static_cast<std::int64_t>(i));
    if (i % 128 == 0) (void)recorder.events();
  });
  EXPECT_EQ(recorder.totalRecorded(), static_cast<std::uint64_t>(kTasks));
  const std::vector<FlightEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 64u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // The retained window is the last `capacity` sequence numbers, in
    // order, regardless of which thread produced each.
    EXPECT_EQ(events[i].seq, static_cast<std::uint64_t>(kTasks - 64 + i));
  }
}

#ifndef CRP_OBS_DISABLED
TEST(FlightRecorder, EventMacroHonoursRuntimeGate) {
  resetAll();
  {
    EnabledScope disabled(false);
    CRP_OBS_EVENT("test", "gated", 1);
    EXPECT_EQ(FlightRecorder::instance().totalRecorded(), 0u);
  }
  {
    EnabledScope enabled(true);
    CRP_OBS_EVENT("test", "gated", 2);
    EXPECT_EQ(FlightRecorder::instance().totalRecorded(), 1u);
    EXPECT_EQ(FlightRecorder::instance().events().back().value, 2);
  }
  resetAll();
}
#endif  // CRP_OBS_DISABLED

// ---- flow timeline ---------------------------------------------------------

TimelineRecord sampleTimelineRecord(int iteration) {
  TimelineRecord record;
  record.iteration = iteration;
  record.criticalCells = 12;
  record.dampedCells = 3;
  record.candidatesGenerated = 60;
  record.netsPriced = 480;
  record.movesSelected = 7;
  record.selectedCost = 815.25;
  record.movedCells = 6;
  record.displacedCells = 2;
  record.totalDisplacementDbu = 5400;
  record.maxDisplacementDbu = 1200;
  record.reroutedNets = 19;
  record.overflowBefore = 14.0;
  record.overflowAfter = 9.5;
  record.overflowedEdgesBefore = 8;
  record.overflowedEdgesAfter = 5;
  return record;
}

TEST(Timeline, RecordRoundTripsThroughJson) {
  const TimelineRecord record = sampleTimelineRecord(0);
  const TimelineRecord parsed =
      TimelineRecord::fromJson(Json::parse(record.toJson().dump()));
  EXPECT_EQ(parsed.toJson(), record.toJson());
  EXPECT_EQ(parsed.totalDisplacementDbu, record.totalDisplacementDbu);
  EXPECT_DOUBLE_EQ(parsed.overflowAfter, record.overflowAfter);
}

TEST(Timeline, FormatAndCsvCoverEveryRecord) {
  const std::vector<TimelineRecord> timeline = {sampleTimelineRecord(0),
                                                sampleTimelineRecord(1)};
  const std::string table = formatTimeline(timeline);
  EXPECT_NE(table.find("iter"), std::string::npos);
  EXPECT_NE(table.find("ovfl"), std::string::npos);

  const std::string csv = timelineCsv(timeline);
  int lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);  // header + one line per record
  EXPECT_NE(csv.find("overflowBefore"), std::string::npos);
}

TEST(RunReportSchema, TimelineIsOptionalAndRoundTrips) {
  // Absent timeline (snapshots off): no "timeline" key at all, so
  // pre-spatial consumers and goldens see byte-identical output.
  const RunReport bare = sampleReport();
  EXPECT_EQ(bare.toJson().find("timeline"), nullptr);
  EXPECT_TRUE(RunReport::fromJson(bare.toJson()).timeline.empty());

  // Present timeline: serialized under the v2 schema and recovered
  // field-for-field.
  RunReport spatial = sampleReport();
  spatial.timeline = {sampleTimelineRecord(0), sampleTimelineRecord(1)};
  const RunReport parsed =
      RunReport::fromJson(Json::parse(spatial.toJson().dump(2)));
  ASSERT_EQ(parsed.timeline.size(), 2u);
  EXPECT_EQ(parsed.toJson(), spatial.toJson());
  EXPECT_EQ(parsed.timeline[1].toJson(), spatial.timeline[1].toJson());
}

TEST(RunReportSchema, FingerprintVersionIsDecoupledFromSchemaVersion) {
  // The v1->v2 schema bump is additive; fingerprints of timeline-free
  // reports must stay pinned to the golden-era version so existing
  // golden files remain valid.
  EXPECT_EQ(RunReport::kSchemaVersion, 2);
  const Json fp = sampleReport().fingerprint();
  EXPECT_EQ(fp.at("schemaVersion").asInt(), RunReport::kFingerprintVersion);
  EXPECT_EQ(fp.find("timeline"), nullptr);

  // A timeline, when present, is part of the behavioural fingerprint.
  RunReport spatial = sampleReport();
  spatial.timeline = {sampleTimelineRecord(0)};
  EXPECT_NE(spatial.fingerprint(), sampleReport().fingerprint());
  RunReport changed = spatial;
  changed.timeline[0].reroutedNets += 1;
  EXPECT_NE(changed.fingerprint(), spatial.fingerprint());
}

// ---- Histogram quantiles ---------------------------------------------------

TEST(Metrics, HistogramQuantileInterpolatesHandBuiltDistribution) {
  // 5 samples in (0, 10], 5 in (10, 20]: the cumulative counts are
  // known exactly, so every quantile is computable by hand with the
  // Prometheus estimator (linear interpolation inside the bucket).
  Histogram h({10, 20, 30});
  for (int i = 0; i < 5; ++i) h.record(10);
  for (int i = 0; i < 5; ++i) h.record(20);

  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);    // rank 5 closes bucket 0
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);   // midway through (10, 20]
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);    // rank 10 closes bucket 1
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);    // midway through (0, 10]
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Metrics, HistogramQuantileEmptyAndOverflow) {
  Histogram empty({1, 2, 4});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  // Every sample past the highest bound: no finite upper edge to
  // interpolate toward, so the estimator reports the highest bound —
  // the same convention histogram_quantile uses for the +Inf bucket.
  Histogram overflow({1, 2, 4});
  for (int i = 0; i < 3; ++i) overflow.record(1000);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.99), 4.0);
}

TEST(Metrics, HistogramQuantileAgreesBetweenLiveAndSnapshotPaths) {
  // loadgen uses Histogram::quantile, the exposition consumers use
  // MetricsSnapshot::HistogramData::quantile; both must be the same
  // estimator over the same buckets.
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat", {1, 2, 4, 8, 16});
  for (std::uint64_t v : {1u, 1u, 3u, 5u, 9u, 17u, 100u}) h->record(v);
  const MetricsSnapshot snap = registry.snapshot();
  const auto& data = snap.histograms.at("lat");
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(data.quantile(q), h->quantile(q)) << "q=" << q;
  }
}

TEST(Metrics, HistogramQuantileConcurrentRecordThenSnapshot) {
  // TSan leg: concurrent record() against quantile()/snapshot readers
  // must be race-free, and after the join the distribution is exact.
  Histogram h(Histogram::defaultBounds());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(i % 64 + 1));
        if (i % 512 == 0) (void)h.quantile(0.5);  // concurrent reader
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  // Quantiles are monotone in q over the settled distribution.
  double previous = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = h.quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
  // Samples span 1..64, so the extremes are pinned.
  EXPECT_GE(h.quantile(1.0), 64.0);
  EXPECT_LE(h.quantile(0.0), 1.0);
}

// ---- Prometheus exposition -------------------------------------------------

TEST(Prometheus, SanitizeMetricNameReplacesIllegalChars) {
  EXPECT_EQ(sanitizeMetricName("serve.op.run.latency"),
            "serve_op_run_latency");
  EXPECT_EQ(sanitizeMetricName("already_legal:name"), "already_legal:name");
  EXPECT_EQ(sanitizeMetricName("spaces and-dashes"), "spaces_and_dashes");
  // A leading digit is legal mid-name but not first.
  EXPECT_EQ(sanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(sanitizeMetricName(""), "_");
}

TEST(Prometheus, GoldenExposition) {
  // One instrument of each kind with hand-set values; the rendered
  // payload must match the text exposition format byte for byte
  // (cumulative buckets, +Inf closing bucket, _sum/_count).
  MetricsRegistry registry;
  registry.counter("crp.moves")->add(3);
  registry.gauge("temp")->set(1.5);
  Histogram* h = registry.histogram("lat", {1, 2});
  h->record(1);
  h->record(2);
  h->record(5);  // overflow

  const std::string expected =
      "# TYPE crp_moves counter\n"
      "crp_moves 3\n"
      "# TYPE temp gauge\n"
      "temp 1.5\n"
      "# TYPE lat histogram\n"
      "lat_bucket{le=\"1\"} 1\n"
      "lat_bucket{le=\"2\"} 2\n"
      "lat_bucket{le=\"+Inf\"} 3\n"
      "lat_sum 8\n"
      "lat_count 3\n";
  EXPECT_EQ(renderPrometheus(registry), expected);
}

TEST(Prometheus, PrefixQualifiesWithoutStutter) {
  // Metrics already namespaced like the prefix must not double up
  // (crp.moves with prefix "crp" is crp_moves, not crp_crp_moves).
  MetricsRegistry registry;
  registry.counter("crp.moves")->add(1);
  registry.counter("other")->add(2);
  const std::string text = renderPrometheus(registry, "crp");
  EXPECT_NE(text.find("crp_moves 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("crp_other 2\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("crp_crp"), std::string::npos) << text;
}

TEST(Prometheus, BucketsAreCumulativeAndCloseAtCount) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("d", {1, 2, 4, 8});
  for (std::uint64_t v : {1u, 2u, 2u, 3u, 9u}) h->record(v);
  const std::string text = renderPrometheus(registry);
  // Disjoint counts are 1,2,1,0,overflow 1 -> cumulative 1,3,4,4 and
  // the +Inf bucket equals _count.
  EXPECT_NE(text.find("d_bucket{le=\"1\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("d_bucket{le=\"2\"} 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("d_bucket{le=\"4\"} 4\n"), std::string::npos) << text;
  EXPECT_NE(text.find("d_bucket{le=\"8\"} 4\n"), std::string::npos) << text;
  EXPECT_NE(text.find("d_bucket{le=\"+Inf\"} 5\n"), std::string::npos) << text;
  EXPECT_NE(text.find("d_count 5\n"), std::string::npos) << text;
}

// ---- Run ledger ------------------------------------------------------------

namespace fs = std::filesystem;

std::string ledgerTempDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() /
                       ("crp_test_obs_" + std::to_string(::getpid())) / name;
  fs::create_directories(dir);
  return dir.string();
}

TEST(RunLedger, Fnv1a64HexMatchesKnownVectors) {
  // Published FNV-1a 64 test vectors — the digest must be
  // platform-independent because ledgers compare across hosts.
  EXPECT_EQ(fnv1a64Hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a64Hex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(fnv1a64Hex("foobar"), "85944171f73967e8");
}

RunLedgerEntry sampleLedgerEntry(const char* kind, const char* design) {
  RunLedgerEntry entry = makeRunLedgerEntry(sampleReport());
  entry.kind = kind;
  entry.design = design;
  entry.optionsDigest = fnv1a64Hex("options");
  entry.tileRows = 2;
  entry.tileCols = 3;
  return entry;
}

TEST(RunLedger, EntryJsonRoundTrips) {
  const RunLedgerEntry entry = sampleLedgerEntry("run", "tiny");
  const RunLedgerEntry parsed =
      RunLedgerEntry::fromJson(Json::parse(entry.toJson().dump()));
  EXPECT_EQ(parsed.kind, entry.kind);
  EXPECT_EQ(parsed.design, entry.design);
  EXPECT_EQ(parsed.gitSha, entry.gitSha);
  EXPECT_EQ(parsed.dirty, entry.dirty);
  EXPECT_EQ(parsed.dirtyFiles, entry.dirtyFiles);
  EXPECT_EQ(parsed.seed, entry.seed);
  EXPECT_EQ(parsed.fingerprintDigest, entry.fingerprintDigest);
  EXPECT_EQ(parsed.qor.wirelengthDbu, entry.qor.wirelengthDbu);
  EXPECT_EQ(parsed.qor.openNets, entry.qor.openNets);
  ASSERT_EQ(parsed.phases.size(), entry.phases.size());
  EXPECT_EQ(parsed.phases.front().name, entry.phases.front().name);
  EXPECT_EQ(parsed.tileRows, 2);
  EXPECT_EQ(parsed.tileCols, 3);
  EXPECT_DOUBLE_EQ(parsed.wallSeconds, entry.wallSeconds);
}

TEST(RunLedger, FromJsonRejectsWrongSchemaVersion) {
  Json doc = sampleLedgerEntry("run", "tiny").toJson();
  doc.set("schemaVersion", RunLedgerEntry::kSchemaVersion + 1);
  EXPECT_THROW(RunLedgerEntry::fromJson(doc), JsonError);
}

TEST(RunLedger, MakeEntryCapturesReportDeterministically) {
  const RunReport report = sampleReport();
  const RunLedgerEntry entry = makeRunLedgerEntry(report);
  EXPECT_EQ(entry.fingerprintDigest, fnv1a64Hex(report.fingerprint().dump()));
  EXPECT_EQ(entry.seed, report.seed);
  EXPECT_EQ(entry.qor.wirelengthDbu, report.router.wirelengthDbu);
  EXPECT_DOUBLE_EQ(entry.cacheHitRate, report.pricing.hitRate());
  EXPECT_DOUBLE_EQ(entry.wallSeconds, report.totalPhaseSeconds());
  // Two entries from the same report digest identically (provenance
  // aside, the ledger is a function of the report).
  EXPECT_EQ(makeRunLedgerEntry(report).fingerprintDigest,
            entry.fingerprintDigest);
}

TEST(RunLedger, LoadMissingFileIsEmpty) {
  const RunLedger::LoadResult loaded =
      RunLedger::load(ledgerTempDir("missing") + "/never_written.jsonl");
  EXPECT_TRUE(loaded.entries.empty());
  EXPECT_EQ(loaded.skippedLines, 0);
}

TEST(RunLedger, AppendLoadRoundTripSurvivesTornTail) {
  const std::string path = ledgerTempDir("torn") + "/ledger.jsonl";
  RunLedger ledger(path);
  std::string error;
  ASSERT_TRUE(ledger.append(sampleLedgerEntry("run", "a"), &error)) << error;
  ASSERT_TRUE(ledger.append(sampleLedgerEntry("run", "b"), &error)) << error;

  // Simulate a crash mid-append: a torn, unterminated JSON fragment at
  // the tail of the file.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"kind\":\"run\",\"des";
  }
  RunLedger::LoadResult loaded = RunLedger::load(path);
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.skippedLines, 1);

  // The next append must repair the torn tail (newline first) so the
  // new entry lands on its own line and stays parseable.
  ASSERT_TRUE(ledger.append(sampleLedgerEntry("eco", "c"), &error)) << error;
  loaded = RunLedger::load(path);
  ASSERT_EQ(loaded.entries.size(), 3u);
  EXPECT_EQ(loaded.skippedLines, 1);
  EXPECT_EQ(loaded.entries.back().kind, "eco");
  EXPECT_EQ(loaded.entries.back().design, "c");
}

// ---- Analytics: report diff ------------------------------------------------

TEST(Analytics, DiffOfIdenticalReportsIsClean) {
  const RunReport report = sampleReport();
  const ReportDiff diff = diffReports(report, report);
  EXPECT_TRUE(diff.fingerprintsIdentical);
  EXPECT_TRUE(diff.qorIdentical);
  EXPECT_TRUE(diff.configsMatch);
  for (const ReportDiff::Delta& d : diff.qor) {
    EXPECT_DOUBLE_EQ(d.delta(), 0.0) << d.name;
  }
  for (const ReportDiff::Delta& d : diff.phases) {
    EXPECT_DOUBLE_EQ(d.delta(), 0.0) << d.name;
  }
  const std::string text = formatReportDiff(diff, "a.json", "b.json");
  EXPECT_NE(text.find("fingerprints: identical"), std::string::npos) << text;
}

TEST(Analytics, DiffDetectsQorDivergence) {
  const RunReport a = sampleReport();
  RunReport b = sampleReport();
  b.router.vias += 7;
  const ReportDiff diff = diffReports(a, b);
  EXPECT_FALSE(diff.fingerprintsIdentical);
  EXPECT_FALSE(diff.qorIdentical);
  const auto vias = std::find_if(
      diff.qor.begin(), diff.qor.end(),
      [](const ReportDiff::Delta& d) { return d.name == "vias"; });
  ASSERT_NE(vias, diff.qor.end());
  EXPECT_DOUBLE_EQ(vias->delta(), 7.0);
  EXPECT_NE(formatReportDiff(diff, "a", "b").find("DIFFER"),
            std::string::npos);
}

TEST(Analytics, DiffAlignsIterationsAndTimelineBrackets) {
  RunReport a = sampleReport();
  RunReport b = sampleReport();
  // b ran one extra iteration; a's missing side counts from zero.
  RunReport::IterationStat extra;
  extra.movedCells = 6;
  extra.reroutedNets = 2;
  b.iterationStats.push_back(extra);
  // Only the first iteration has a timeline record on both sides.
  a.timeline = {sampleTimelineRecord(0)};
  b.timeline = {sampleTimelineRecord(0), sampleTimelineRecord(1)};

  const ReportDiff diff = diffReports(a, b);
  ASSERT_EQ(diff.iterations.size(), 2u);
  EXPECT_EQ(diff.iterations[0].movedCells, 0);
  EXPECT_EQ(diff.iterations[1].movedCells, 6);
  EXPECT_TRUE(diff.iterations[0].hasOverflow);
  EXPECT_FALSE(diff.iterations[1].hasOverflow);
  // The structured JSON mirrors the struct.
  const Json json = diff.toJson();
  EXPECT_EQ(json.at("iterations").size(), 2u);
}

// ---- Analytics: ledger check -----------------------------------------------

TEST(Analytics, CheckLedgerFirstEntrySkips) {
  RunLedger::LoadResult loaded;
  loaded.entries.push_back(sampleLedgerEntry("run", "tiny"));
  const LedgerCheckResult result = checkLedger(loaded);
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_FALSE(result.series[0].checked);
  EXPECT_NE(result.format().find("SKIP"), std::string::npos);
}

TEST(Analytics, CheckLedgerGatesQorGrowthWorseOnly) {
  RunLedger::LoadResult loaded;
  RunLedgerEntry prev = sampleLedgerEntry("run", "tiny");
  prev.qor.wirelengthDbu = 1000;
  RunLedgerEntry improved = prev;
  improved.qor.wirelengthDbu = 900;  // improvements never fail
  loaded.entries = {prev, improved};
  EXPECT_TRUE(checkLedger(loaded).ok);

  RunLedgerEntry regressed = prev;
  regressed.qor.wirelengthDbu = 1030;  // +3% > the 2% band
  loaded.entries = {prev, regressed};
  const LedgerCheckResult result = checkLedger(loaded);
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_FALSE(result.series[0].failures.empty());
  EXPECT_NE(result.format().find("wirelength regressed"), std::string::npos);
}

TEST(Analytics, CheckLedgerNeverAllowsNewOpenNets) {
  RunLedger::LoadResult loaded;
  RunLedgerEntry prev = sampleLedgerEntry("run", "tiny");
  prev.qor.openNets = 0;
  RunLedgerEntry last = prev;
  last.qor.openNets = 1;
  loaded.entries = {prev, last};
  const LedgerCheckResult result = checkLedger(loaded);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.format().find("open nets regressed"), std::string::npos);
}

TEST(Analytics, CheckLedgerBenchDirectionHeuristic) {
  const auto benchEntry = [](double runMs, double speedup) {
    RunLedgerEntry entry = sampleLedgerEntry("bench", "BENCH_x");
    entry.metrics = Json::object();
    entry.metrics.set("run_ms", runMs);
    entry.metrics.set("speedup", speedup);
    entry.metrics.set("jobs", 100.0);  // undirected: never gated
    return entry;
  };
  // Latency more than doubled (tolPerfRel = 1.0) -> fail.
  RunLedger::LoadResult loaded;
  loaded.entries = {benchEntry(100.0, 2.0), benchEntry(250.0, 2.0)};
  EXPECT_FALSE(checkLedger(loaded).ok);
  // Speedup less than halved -> fail.
  loaded.entries = {benchEntry(100.0, 2.0), benchEntry(100.0, 0.9)};
  EXPECT_FALSE(checkLedger(loaded).ok);
  // Within both bands (and the undirected count swinging wildly) -> ok.
  loaded.entries = {benchEntry(100.0, 2.0), benchEntry(150.0, 1.5)};
  RunLedgerEntry noisy = benchEntry(150.0, 1.5);
  noisy.metrics.set("jobs", 1.0);
  loaded.entries.back() = noisy;
  EXPECT_TRUE(checkLedger(loaded).ok);
}

TEST(Analytics, CheckLedgerSkipDirtyFiltersEntries) {
  RunLedger::LoadResult loaded;
  RunLedgerEntry clean = sampleLedgerEntry("run", "tiny");
  clean.dirty = false;
  clean.qor.wirelengthDbu = 1000;
  RunLedgerEntry dirty = clean;
  dirty.dirty = true;
  dirty.qor.wirelengthDbu = 5000;  // would fail the band if compared
  loaded.entries = {clean, dirty};

  LedgerCheckOptions options;
  options.skipDirty = true;
  const LedgerCheckResult filtered = checkLedger(loaded, options);
  EXPECT_TRUE(filtered.ok);
  ASSERT_EQ(filtered.series.size(), 1u);
  EXPECT_FALSE(filtered.series[0].checked);  // dirty entry filtered out

  // Without the filter the regression is caught (with a dirty note).
  const LedgerCheckResult unfiltered = checkLedger(loaded);
  EXPECT_FALSE(unfiltered.ok);
  EXPECT_NE(unfiltered.format().find("dirty"), std::string::npos);
}

}  // namespace
}  // namespace crp::obs
