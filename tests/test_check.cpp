// Tests for the invariant-audit subsystem (src/check): clean flows
// audit clean, and seeded corruptions of a known-good database are each
// caught by exactly the invariant that owns the broken contract — the
// audit catalog's precision guarantee (docs/checking.md).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/audit.hpp"
#include "check/fuzz.hpp"
#include "crp/framework.hpp"
#include "crp/pricing_cache.hpp"
#include "groute/global_router.hpp"
#include "groute/route.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heatmap.hpp"
#include "obs/obs.hpp"
#include "test_helpers.hpp"

namespace crp {
namespace {

using check::AuditReport;
using check::DbAuditor;
using check::Invariant;
using groute::GPoint;
using groute::NetRoute;

// ---- catalog plumbing -------------------------------------------------------

TEST(AuditLevel, ParsesCliSpellings) {
  EXPECT_EQ(check::auditLevelFromString("off"), check::AuditLevel::kOff);
  EXPECT_EQ(check::auditLevelFromString("none"), check::AuditLevel::kOff);
  EXPECT_EQ(check::auditLevelFromString("phase"),
            check::AuditLevel::kPhaseBoundary);
  EXPECT_EQ(check::auditLevelFromString("phase-boundary"),
            check::AuditLevel::kPhaseBoundary);
  EXPECT_EQ(check::auditLevelFromString("paranoid"),
            check::AuditLevel::kParanoid);
  EXPECT_EQ(check::auditLevelFromString("full"), check::AuditLevel::kParanoid);
  EXPECT_FALSE(check::auditLevelFromString("bogus").has_value());
  EXPECT_STREQ(check::auditLevelName(check::AuditLevel::kParanoid), "paranoid");
}

TEST(AuditReportApi, OnlyFailureAndCountSemantics) {
  AuditReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.onlyFailure(Invariant::kRouteValidity));  // empty != only

  report.failures.push_back(
      {Invariant::kRouteValidity, "net n0", "connected", "disconnected"});
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.onlyFailure(Invariant::kRouteValidity));
  EXPECT_EQ(report.countFor(Invariant::kRouteValidity), 1);
  EXPECT_EQ(report.countFor(Invariant::kDemandExactness), 0);

  report.failures.push_back(
      {Invariant::kDemandExactness, "wire edge L0 (1,1)", "1", "2"});
  EXPECT_FALSE(report.onlyFailure(Invariant::kRouteValidity));
  EXPECT_NE(report.summary().find("route-validity"), std::string::npos);
  EXPECT_NE(report.summary().find("demand-exactness"), std::string::npos);
}

// ---- clean baseline ---------------------------------------------------------

TEST(DbAuditorTest, CleanFlowAuditsClean) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter router(db);
  router.run();
  const AuditReport report = DbAuditor(db, &router).auditAll();
  EXPECT_CLEAN_AUDIT(report);
  // placement (3 catalog entries: single-row legality, macro legality,
  // height alignment) + DEF round trip + routes + demand + guide round
  // trip + blockage demand.
  EXPECT_EQ(report.invariantsChecked, 8);

  // Without a router only the router-free invariants run.
  const AuditReport dbOnly = DbAuditor(db).auditAll();
  EXPECT_CLEAN_AUDIT(dbOnly);
  EXPECT_EQ(dbOnly.invariantsChecked, 4);
}

// ---- scenario fixture: fixed macro + double-height cell ---------------------

// Hand-built design exercising the scenario axes with geometry small
// enough to reason about by hand: die 1000x500 over 10x5 gcells of
// 100x100, a 200x200 fixed macro block at (300,100) whose obstructions
// fully cover gcells (3..4, 1..2) on layers 0-1 (so the layer-0 H edge
// (3,1)->(4,1) is interior to the macro and hard-blocked), one 2-pin
// net whose terminals sit in gcells (2,1) and (5,1) on either side of
// the macro, and a legally-placed double-height cell spanning rows 1-2.
inline db::Database makeMacroFixtureDatabase() {
  using namespace crp::db;
  using geom::Point;
  using geom::Rect;

  Tech tech = Tech::makeDefault(/*numLayers=*/4, /*pitch=*/20, /*width=*/6,
                                /*spacing=*/8, /*minArea=*/120,
                                /*siteWidth=*/10, /*rowHeight=*/100);
  Library lib = Library::makeDefault(10, 100, /*pinLayer=*/0);
  const int inv = *lib.findMacro("INV_X1");

  Macro blk;
  blk.name = "BLK";
  blk.width = 200;
  blk.height = 200;
  blk.obstructions.push_back(Obstruction{0, Rect{0, 0, 200, 200}});
  blk.obstructions.push_back(Obstruction{1, Rect{0, 0, 200, 200}});
  const int blkId = lib.addMacro(std::move(blk));

  Macro dh;  // double-height movable cell, two sites wide
  dh.name = "DH2";
  dh.width = 20;
  dh.height = 200;
  const int dhId = lib.addMacro(std::move(dh));

  Design design;
  design.name = "macro_fixture";
  design.dieArea = Rect{0, 0, 1000, 500};
  for (int r = 0; r < 5; ++r) {
    design.rows.push_back(Row{"row" + std::to_string(r), Point{0, 100 * r},
                              100, geom::Orientation::kN});
  }
  design.gcellCountX = 10;
  design.gcellCountY = 5;
  crp::testing::addDefaultTracks(design, tech);

  auto addCell = [&](const std::string& name, int macro, Point pos,
                     bool fixed) {
    Component c;
    c.name = name;
    c.macro = macro;
    c.pos = pos;
    c.fixed = fixed;
    design.components.push_back(c);
  };
  addCell("blk", blkId, Point{300, 100}, true);
  addCell("c0", inv, Point{250, 100}, false);   // gcell (2,1)
  addCell("c1", inv, Point{550, 100}, false);   // gcell (5,1)
  addCell("d0", dhId, Point{700, 100}, false);  // rows 1-2, aligned

  // INV_X1 pins: 0 = A (input), 1 = Y (output).
  Net net;
  net.name = "n0";
  net.pins = {NetPin{CompPinRef{1, 1}}, NetPin{CompPinRef{2, 0}}};
  design.nets.push_back(std::move(net));

  return Database(std::move(tech), std::move(lib), std::move(design));
}

// ---- seeded corruptions: each caught by exactly its invariant ---------------

// Shifting a cell off its site grid breaks placement legality and
// nothing else (the 3-dbu shift stays inside the cell's gcell, so
// terminals, routes and demand are untouched).
TEST(DbAuditorMutation, OffSiteCellCaughtByPlacementLegalityOnly) {
  auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter router(db);
  router.run();

  const geom::Point pos = db.cell(0).pos;
  db.moveCell(0, geom::Point{pos.x + 3, pos.y});

  const AuditReport report = DbAuditor(db, &router).auditAll();
  EXPECT_TRUE(report.onlyFailure(Invariant::kPlacementLegality))
      << report.summary();
  EXPECT_GE(report.countFor(Invariant::kPlacementLegality), 1);
}

// Dropping a load-bearing segment from a committed route (with the
// demand maps compensated, as a buggy rip-up would) is a route-validity
// failure and nothing else.
TEST(DbAuditorMutation, DroppedSegmentCaughtByRouteValidityOnly) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter router(db);
  router.run();

  // Find a segment whose removal disconnects its net.
  db::NetId targetNet = db::kInvalidId;
  std::size_t targetSeg = 0;
  for (db::NetId net = 0; net < db.numNets() && targetNet == db::kInvalidId;
       ++net) {
    const std::vector<GPoint> terminals = router.netTerminals(net);
    const NetRoute& route = router.route(net);
    if (terminals.size() < 2 || !route.routed || route.segments.size() < 2) {
      continue;
    }
    for (std::size_t i = 0; i < route.segments.size(); ++i) {
      NetRoute pruned = route;
      pruned.segments.erase(pruned.segments.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (!groute::routeConnectsTerminals(pruned, terminals)) {
        targetNet = net;
        targetSeg = i;
        break;
      }
    }
  }
  ASSERT_NE(targetNet, db::kInvalidId);

  NetRoute& route = router.mutableRoute(targetNet);
  NetRoute removed;
  removed.routed = true;
  removed.segments = {route.segments[targetSeg]};
  route.segments.erase(route.segments.begin() +
                       static_cast<std::ptrdiff_t>(targetSeg));
  router.graph().applyRoute(removed, -1);  // keep demand == routes

  const AuditReport report = DbAuditor(db, &router).auditAll();
  EXPECT_TRUE(report.onlyFailure(Invariant::kRouteValidity))
      << report.summary();
}

// Charging the demand maps for a phantom route that belongs to no net
// is a demand-exactness failure and nothing else (routes themselves
// are untouched and still valid).
TEST(DbAuditorMutation, SkewedDemandCaughtByDemandExactnessOnly) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter router(db);
  router.run();

  NetRoute phantom;
  phantom.routed = true;
  if (router.graph().layerDir(0) == db::LayerDir::kHorizontal) {
    phantom.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 1, 0}});
  } else {
    phantom.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 0, 1}});
  }
  router.graph().applyRoute(phantom, +1);

  const AuditReport report = DbAuditor(db, &router).auditAll();
  EXPECT_TRUE(report.onlyFailure(Invariant::kDemandExactness))
      << report.summary();
  // The skewed edge and the wirelength total both diverge.
  EXPECT_GE(report.countFor(Invariant::kDemandExactness), 2);
}

// An applyRouteLocal that never merged leaves pending ops and delta
// residue in a tile's demand view: a tile-partition-exactness failure
// and nothing else (the shared graph was never touched, so demand and
// routes stay coherent).
TEST(DbAuditorMutation, UnmergedTileViewCaughtByTilePartitionExactnessOnly) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter router(db);
  router.setTileGrid(2, 2);
  router.run();
  ASSERT_NE(router.tileGrid(), nullptr);
  {
    const AuditReport clean = DbAuditor(db, &router).auditAll();
    EXPECT_CLEAN_AUDIT(clean);
    EXPECT_EQ(clean.invariantsChecked, 9);  // the router-attached 8 + tiles
  }

  NetRoute phantom;
  phantom.routed = true;
  if (router.graph().layerDir(0) == db::LayerDir::kHorizontal) {
    phantom.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 1, 0}});
  } else {
    phantom.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 0, 1}});
  }
  auto* view = const_cast<groute::TileDemandView*>(router.tileViews().front());
  view->applyRouteLocal(phantom, +1);

  const AuditReport report = DbAuditor(db, &router).auditAll();
  EXPECT_TRUE(report.onlyFailure(Invariant::kTilePartitionExactness))
      << report.summary();
  // The pending op and the touched delta slot both surface.
  EXPECT_GE(report.countFor(Invariant::kTilePartitionExactness), 2);
}

// Swapping a committed route for a straight shot through the macro's
// interior (demand maps compensated, so the route/demand contracts
// still hold and the route still connects its terminals) is a
// blockage-demand failure and nothing else.  Exactly one of the three
// crossed edges — (3,1)->(4,1), interior to the macro — is hard.
TEST(DbAuditorMutation, RouteOverHardBlockedEdgeCaughtByBlockageDemandOnly) {
  const auto db = makeMacroFixtureDatabase();
  groute::GlobalRouter router(db);
  router.run();
  ASSERT_TRUE(router.graph().hardBlocked(groute::WireEdge{0, 3, 1}));
  ASSERT_FALSE(router.graph().hardBlocked(groute::WireEdge{0, 2, 1}));
  EXPECT_CLEAN_AUDIT(DbAuditor(db, &router).auditAll());

  const db::NetId net = db.findNet("n0");
  ASSERT_NE(net, db::kInvalidId);
  NetRoute& route = router.mutableRoute(net);
  router.graph().applyRoute(route, -1);
  route.segments = {{GPoint{0, 2, 1}, GPoint{0, 5, 1}}};
  router.graph().applyRoute(route, +1);  // keep demand == routes

  const AuditReport report = DbAuditor(db, &router).auditAll();
  EXPECT_TRUE(report.onlyFailure(Invariant::kBlockageDemand))
      << report.summary();
  EXPECT_EQ(report.countFor(Invariant::kBlockageDemand), 1);
}

// Moving a movable cell onto the fixed macro's footprint is a
// macro-legality failure and nothing else.  Router-free audit: moving
// the cell moves its net terminal, so a router-attached audit would
// legitimately also flag the stale route — the macro invariant is
// isolated on the placement-only side.
TEST(DbAuditorMutation, CellOnMacroFootprintCaughtByMacroLegalityOnly) {
  auto db = makeMacroFixtureDatabase();
  EXPECT_CLEAN_AUDIT(DbAuditor(db).auditAll());

  db.moveCell(db.findCell("c0"), geom::Point{350, 100});

  const AuditReport report = DbAuditor(db).auditAll();
  EXPECT_TRUE(report.onlyFailure(Invariant::kMacroLegality))
      << report.summary();
  EXPECT_GE(report.countFor(Invariant::kMacroLegality), 1);
}

// Shifting the double-height cell half a row down leaves it site- and
// die-legal but starts it off every row origin: a height-alignment
// failure and nothing else (the cell has no nets, so even routes stay
// coherent; db-only audit for symmetry with the macro mutation).
TEST(DbAuditorMutation, MisalignedMultiRowCellCaughtByHeightAlignmentOnly) {
  auto db = makeMacroFixtureDatabase();
  ASSERT_TRUE(db.isMultiRow(db.findCell("d0")));

  db.moveCell(db.findCell("d0"), geom::Point{700, 150});

  const AuditReport report = DbAuditor(db).auditAll();
  EXPECT_TRUE(report.onlyFailure(Invariant::kHeightAlignment))
      << report.summary();
  EXPECT_GE(report.countFor(Invariant::kHeightAlignment), 1);
}

// A cached price that predates a demand change is stale: replaying the
// entries against the live graph is a pricing-coherence failure and
// nothing else.
TEST(DbAuditorMutation, StaleCacheEntryCaughtByPricingCoherenceOnly) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter router(db);
  router.run();
  const groute::PatternRouter pattern(router.graph());
  groute::PatternRouter::Scratch scratch;

  // Price one real net through the production cache.
  db::NetId net = db::kInvalidId;
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    if (router.netTerminals(n).size() >= 2) {
      net = n;
      break;
    }
  }
  ASSERT_NE(net, db::kInvalidId);
  std::vector<GPoint> terminals = router.netTerminals(net);
  core::canonicalizeTerminals(terminals);
  core::PricingCache cache;
  cache.price(terminals, pattern, scratch);

  // While the graph is unchanged the snapshot replays clean.
  AuditReport fresh;
  check::auditCachedPrices(pattern, cache.entries(), fresh);
  EXPECT_CLEAN_AUDIT(fresh);

  // Saturate every wire edge: any tree over distinct gcells crosses at
  // least one, and the Eq. 10 logistic penalty is strictly increasing
  // in demand, so every cached price is now provably stale.
  for (int layer = 0; layer < router.graph().numLayers(); ++layer) {
    const bool horizontal =
        router.graph().layerDir(layer) == db::LayerDir::kHorizontal;
    const int lines = horizontal ? router.graph().grid().countY()
                                 : router.graph().grid().countX();
    const int span = horizontal ? router.graph().grid().countX()
                                : router.graph().grid().countY();
    for (int line = 0; line < lines; ++line) {
      NetRoute jam;
      jam.routed = true;
      jam.segments.push_back(
          horizontal
              ? groute::RouteSegment{GPoint{layer, 0, line},
                                     GPoint{layer, span - 1, line}}
              : groute::RouteSegment{GPoint{layer, line, 0},
                                     GPoint{layer, line, span - 1}});
      for (int i = 0; i < 16; ++i) router.graph().applyRoute(jam, +1);
    }
  }

  AuditReport stale;
  check::auditCachedPrices(pattern, cache.entries(), stale);
  EXPECT_TRUE(stale.onlyFailure(Invariant::kPricingCoherence))
      << stale.summary();
}

// ---- flow fingerprint -------------------------------------------------------

TEST(FlowFingerprint, DeterministicAndStateSensitive) {
  auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter router(db);
  router.run();

  const std::uint64_t fp = check::flowFingerprint(db, router);
  EXPECT_EQ(fp, check::flowFingerprint(db, router));

  const geom::Point pos = db.cell(0).pos;
  db.moveCell(0, geom::Point{pos.x + 40, pos.y});
  EXPECT_NE(fp, check::flowFingerprint(db, router));
}

// ---- fuzz harness plumbing --------------------------------------------------

TEST(FuzzSpec, SeedFullyDeterminesDesign) {
  const check::FuzzOptions options;
  const auto a = check::specForSeed(7, options);
  const auto b = check::specForSeed(7, options);
  EXPECT_EQ(a.targetCells, b.targetCells);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.netsPerCell, b.netsPerCell);
  EXPECT_EQ(a.localityBias, b.localityBias);
  EXPECT_EQ(a.hotspots, b.hotspots);
  EXPECT_EQ(a.hotspotStrength, b.hotspotStrength);
  EXPECT_EQ(a.seed, 7u);
  EXPECT_GE(a.targetCells, options.minCells);
  EXPECT_LE(a.targetCells, options.maxCells);

  const auto c = check::specForSeed(8, options);
  EXPECT_TRUE(a.targetCells != c.targetCells ||
              a.utilization != c.utilization ||
              a.netsPerCell != c.netsPerCell);
}

// Turning a scenario axis on must not disturb the base draws: the axis
// draws are appended after them in the RNG stream, so seed N keeps
// meaning the same base design in every campaign, old or new.
TEST(FuzzSpec, ScenarioAxesPreserveBaseDraws) {
  const check::FuzzOptions base;
  check::FuzzOptions scenario;
  scenario.macroCount = 3;
  scenario.multiRowFrac = 0.3;

  const auto a = check::specForSeed(7, base);
  const auto b = check::specForSeed(7, scenario);
  EXPECT_EQ(a.targetCells, b.targetCells);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.netsPerCell, b.netsPerCell);
  EXPECT_EQ(a.localityBias, b.localityBias);
  EXPECT_EQ(a.hotspots, b.hotspots);
  EXPECT_EQ(a.hotspotStrength, b.hotspotStrength);

  EXPECT_EQ(a.macroCount, 0);
  EXPECT_EQ(a.multiRowFrac, 0.0);
  EXPECT_GE(b.macroCount, 1);
  EXPECT_LE(b.macroCount, 3);
  EXPECT_GE(b.multiRowFrac, 0.05);
  EXPECT_LE(b.multiRowFrac, 0.3);
}

// A minimized repro must carry the scenario flags: the axes change the
// seed's spec draw, so `crp_fuzz --replay N` without them rebuilds the
// base design and the failure silently stops reproducing.
TEST(FuzzSpec, ReplayCommandCarriesScenarioAxes) {
  check::FuzzOptions base;
  base.routerThreadsVariant = 4;
  EXPECT_EQ(check::replayCommandFor(base, 7, 80, 2),
            "crp_fuzz --replay 7 --cells 80 --k 2 --router-threads 4");

  check::FuzzOptions scenario = base;
  scenario.macroCount = 3;
  scenario.multiRowFrac = 0.3;
  EXPECT_EQ(check::replayCommandFor(scenario, 7, 80, 2),
            "crp_fuzz --replay 7 --cells 80 --k 2 --router-threads 4"
            " --macros 3 --multi-row 0.3");
}

// ---- audit-triggered flight-recorder dumps ----------------------------------

#ifndef CRP_OBS_DISABLED
// The whole diagnostic loop: run a spatially-instrumented flow (fills
// the event ring and the latest heatmap), inject the off-site-cell
// corruption from the mutation tests above, and let the dirty audit
// dump the flight recorder.  The artifact must carry the triggering
// failure, the recent events, and a decodable heatmap.
TEST(FlightDump, DirtyAuditWritesRenderableArtifact) {
  obs::EnabledScope enabled(true);
  obs::resetAll();

  auto db = crp::testing::makeGridDatabase(12, 6);
  groute::GlobalRouter router(db);
  router.run();
  core::CrpOptions options;
  options.iterations = 1;
  options.snapshots = true;
  core::CrpFramework framework(db, router, options);
  framework.run();
  ASSERT_GT(obs::FlightRecorder::instance().totalRecorded(), 0u);

  // Inject the corruption, audit, and dump on the dirty report.  The
  // context string's '/' must be sanitized away in the filename.
  const geom::Point pos = db.cell(0).pos;
  db.moveCell(0, geom::Point{pos.x + 3, pos.y});
  const AuditReport report = DbAuditor(db, &router).auditAll();
  ASSERT_FALSE(report.clean());

  const std::string dir = ::testing::TempDir() + "crp_flight_dump_test";
  const std::string path =
      check::writeFlightRecorderDump(report, dir, "UD/iter0");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("flight_UD-iter0.json"), std::string::npos) << path;

  std::ifstream in(path);
  ASSERT_TRUE(in) << "dump not written to " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::Json dump = obs::Json::parse(buffer.str());

  EXPECT_EQ(dump.at("schemaVersion").asInt(),
            obs::FlightRecorder::kSchemaVersion);
  EXPECT_EQ(dump.at("trigger").at("source").asString(), "audit");
  EXPECT_EQ(dump.at("trigger").at("context").asString(), "UD/iter0");

  // The trigger embeds the structured audit report, including the
  // placement-legality failure the mutation caused.
  const obs::Json& audit = dump.at("trigger").at("audit");
  EXPECT_GT(audit.at("invariantsChecked").asInt(), 0);
  bool sawPlacementFailure = false;
  for (const obs::Json& failure : audit.at("failures").asArray()) {
    if (failure.at("invariant").asString() ==
        check::invariantName(Invariant::kPlacementLegality)) {
      sawPlacementFailure = true;
      EXPECT_FALSE(failure.at("object").asString().empty());
    }
  }
  EXPECT_TRUE(sawPlacementFailure) << audit.dump(2);

  // The event ring holds at most `capacity` events, ending with the
  // flow's most recent ones.
  const auto& events = dump.at("events").asArray();
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(),
            static_cast<std::size_t>(dump.at("capacity").asInt()));
  bool sawPhaseEvent = false;
  for (const obs::Json& event : events) {
    if (event.at("category").asString() == "crp") sawPhaseEvent = true;
  }
  EXPECT_TRUE(sawPhaseEvent);

  // The attached heatmap is the flow's latest snapshot and decodes.
  const obs::HeatmapSnapshot heatmap =
      obs::HeatmapSnapshot::fromJson(dump.at("latestHeatmap"));
  EXPECT_EQ(heatmap.toJson(), framework.heatmaps().latest().toJson());
  obs::resetAll();
}

TEST(FlightDump, AuditReportJsonMirrorsFailures) {
  AuditReport report;
  report.invariantsChecked = 3;
  report.failures.push_back(check::AuditFailure{
      Invariant::kDemandExactness, "wire edge L2 (4,1)", "2", "3"});
  const obs::Json j = check::auditReportToJson(report);
  EXPECT_EQ(j.at("invariantsChecked").asInt(), 3);
  const auto& failures = j.at("failures").asArray();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].at("invariant").asString(),
            check::invariantName(Invariant::kDemandExactness));
  EXPECT_EQ(failures[0].at("object").asString(), "wire edge L2 (4,1)");
  EXPECT_EQ(failures[0].at("expected").asString(), "2");
  EXPECT_EQ(failures[0].at("actual").asString(), "3");
}
#endif  // CRP_OBS_DISABLED

TEST(FuzzCampaignTest, SingleSeedPassesAllLegs) {
  check::FuzzOptions options;
  options.seedStart = 3;
  options.seedCount = 1;
  options.iterations = 1;
  options.minCells = 60;
  options.maxCells = 90;
  check::FuzzCampaign campaign(options);
  const check::CampaignReport report = campaign.run();
  EXPECT_TRUE(report.clean()) << report.summary();
  ASSERT_EQ(report.seeds.size(), 1u);
  ASSERT_EQ(report.seeds.front().legs.size(), 4u);
  for (const check::LegResult& leg : report.seeds.front().legs) {
    EXPECT_TRUE(leg.ok) << leg.name << ": " << leg.error;
    EXPECT_EQ(leg.stateFingerprint,
              report.seeds.front().legs.front().stateFingerprint)
        << leg.name;
  }
}

}  // namespace
}  // namespace crp
