// Shared builders for unit tests: a tiny hand-made design with known
// geometry so expectations can be computed by hand.
#pragma once

#include <string>
#include <vector>

#include "check/audit.hpp"
#include "db/database.hpp"

/// Asserts that a check::AuditReport is clean; on failure the full
/// structured failure list (invariant, object, expected vs actual) is
/// attached to the gtest message.
#define EXPECT_CLEAN_AUDIT(report)                                          \
  do {                                                                      \
    const ::crp::check::AuditReport& crpCleanAuditReport_ = (report);       \
    EXPECT_TRUE(crpCleanAuditReport_.clean()) << crpCleanAuditReport_.summary(); \
  } while (0)

namespace crp::testing {

/// Adds preferred-direction track grids covering the die for every
/// routing layer of `tech`.
inline void addDefaultTracks(crp::db::Design& design,
                             const crp::db::Tech& tech) {
  for (int l = 0; l < tech.numLayers(); ++l) {
    const auto& layer = tech.layer(l);
    crp::db::TrackGrid grid;
    grid.layer = l;
    grid.dir = layer.dir;
    grid.step = layer.pitch;
    if (layer.dir == crp::db::LayerDir::kHorizontal) {
      grid.start = design.dieArea.ylo + layer.offset;
      grid.count = static_cast<int>(
          (design.dieArea.height() - layer.offset + layer.pitch - 1) /
          layer.pitch);
    } else {
      grid.start = design.dieArea.xlo + layer.offset;
      grid.count = static_cast<int>(
          (design.dieArea.width() - layer.offset + layer.pitch - 1) /
          layer.pitch);
    }
    design.tracks.push_back(grid);
  }
}

/// Builds a database with:
///  - default 4-layer tech, site 10 x 100, pitch 20
///  - die 1000 x 500, 5 rows of 100 sites
///  - 4 single-site cells (c0..c3) on known positions
///  - nets: n0 = {c0, c1}, n1 = {c1, c2, c3}, n2 = {c0, io0}
///  - one IO pin at (0, 250) on layer 0
inline db::Database makeTinyDatabase() {
  using namespace crp::db;
  using geom::Point;
  using geom::Rect;

  Tech tech = Tech::makeDefault(/*numLayers=*/4, /*pitch=*/20, /*width=*/6,
                                /*spacing=*/8, /*minArea=*/120,
                                /*siteWidth=*/10, /*rowHeight=*/100);
  Library lib = Library::makeDefault(10, 100, /*pinLayer=*/0);
  const int inv = *lib.findMacro("INV_X1");

  Design design;
  design.name = "tiny";
  design.dieArea = Rect{0, 0, 1000, 500};
  for (int r = 0; r < 5; ++r) {
    design.rows.push_back(Row{"row" + std::to_string(r), Point{0, 100 * r},
                              100, geom::Orientation::kN});
  }
  design.gcellCountX = 10;
  design.gcellCountY = 5;
  addDefaultTracks(design, tech);

  auto addCell = [&](const std::string& name, Point pos) {
    Component c;
    c.name = name;
    c.macro = inv;
    c.pos = pos;
    design.components.push_back(c);
  };
  addCell("c0", Point{100, 0});
  addCell("c1", Point{500, 100});
  addCell("c2", Point{800, 300});
  addCell("c3", Point{200, 400});

  design.ioPins.push_back(IoPin{"io0", Point{0, 250}, 0,
                                Rect{0, 245, 10, 255}});

  auto addNet = [&](const std::string& name,
                    std::vector<NetPin> pins) {
    Net net;
    net.name = name;
    net.pins = std::move(pins);
    design.nets.push_back(net);
  };
  // INV_X1 pins: 0 = A (input), 1 = Y (output)
  addNet("n0", {NetPin{CompPinRef{0, 1}}, NetPin{CompPinRef{1, 0}}});
  addNet("n1", {NetPin{CompPinRef{1, 1}}, NetPin{CompPinRef{2, 0}},
                NetPin{CompPinRef{3, 0}}});
  addNet("n2", {NetPin{CompPinRef{0, 0}}, NetPin{IoPinId{0}}});

  return Database(std::move(tech), std::move(lib), std::move(design));
}

/// Builds a denser design for router tests: `cols` x `rows` grid of
/// NAND2 cells on a 6-layer stack, a serpentine chain Y(i) -> A(i+1)
/// plus periodic fan-out to the B pin one row up.  Every pin belongs to
/// exactly one net (valid single-driver netlist); deterministic.
inline db::Database makeGridDatabase(int cols, int rows) {
  using namespace crp::db;
  using geom::Point;
  using geom::Rect;

  const Coord siteW = 10;
  const Coord rowH = 100;
  const Coord cellPitchX = 40;  // 2-site cell per 4 sites: 50% utilization
  Tech tech = Tech::makeDefault(/*numLayers=*/6, /*pitch=*/20, /*width=*/6,
                                /*spacing=*/8, /*minArea=*/120, siteW, rowH);
  Library lib = Library::makeDefault(siteW, rowH, /*pinLayer=*/0);
  const int nand = *lib.findMacro("NAND2_X1");

  Design design;
  design.name = "grid";
  design.dieArea = Rect{0, 0, cols * cellPitchX, rows * rowH};
  for (int r = 0; r < rows; ++r) {
    design.rows.push_back(Row{"row" + std::to_string(r), Point{0, rowH * r},
                              static_cast<int>(cols * cellPitchX / siteW),
                              geom::Orientation::kN});
  }
  design.gcellCountX = std::max(2, cols / 2);
  design.gcellCountY = std::max(2, rows);
  addDefaultTracks(design, tech);

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      Component comp;
      comp.name = "g" + std::to_string(r) + "_" + std::to_string(c);
      comp.macro = nand;
      comp.pos = Point{c * cellPitchX, r * rowH};
      design.components.push_back(comp);
    }
  }
  // NAND2 pins: 0 = A, 1 = B, 2 = Y.
  const int n = rows * cols;
  for (int i = 0; i + 1 < n; ++i) {
    Net net;
    net.name = "net_" + std::to_string(i);
    net.pins.push_back(NetPin{CompPinRef{i, 2}});      // Y(i)
    net.pins.push_back(NetPin{CompPinRef{i + 1, 0}});  // A(i+1)
    if (i % 5 == 0 && i + cols < n) {
      net.pins.push_back(NetPin{CompPinRef{i + cols, 1}});  // B one row up
    }
    design.nets.push_back(net);
  }
  return Database(std::move(tech), std::move(lib), std::move(design));
}

}  // namespace crp::testing
