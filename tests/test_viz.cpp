// Tests for the SVG writer: well-formedness, element counts, options.
#include <gtest/gtest.h>

#include <sstream>

#include "bmgen/generator.hpp"
#include "groute/global_router.hpp"
#include "test_helpers.hpp"
#include "viz/svg_writer.hpp"

namespace crp::viz {
namespace {

int countOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(SvgWriter, ProducesWellFormedDocument) {
  const auto db = crp::testing::makeTinyDatabase();
  std::ostringstream out;
  writeSvg(out, db);
  const std::string svg = out.str();
  EXPECT_NE(svg.find("<?xml"), std::string::npos);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(countOccurrences(svg, "<svg"), 1);
}

TEST(SvgWriter, DrawsOneRectPerCellPlusRowsAndFrame) {
  const auto db = crp::testing::makeTinyDatabase();
  std::ostringstream out;
  writeSvg(out, db);
  // frame + 5 rows + 4 cells.
  EXPECT_EQ(countOccurrences(out.str(), "<rect"), 1 + 5 + 4);
}

TEST(SvgWriter, CellsCanBeDisabled) {
  const auto db = crp::testing::makeTinyDatabase();
  SvgOptions options;
  options.drawCells = false;
  std::ostringstream out;
  writeSvg(out, db, nullptr, options);
  EXPECT_EQ(countOccurrences(out.str(), "<rect"), 1 + 5);
}

TEST(SvgWriter, RoutesDrawnAsLines) {
  const auto db = crp::testing::makeTinyDatabase();
  groute::GlobalRouter router(db);
  router.run();
  std::ostringstream out;
  writeSvg(out, db, &router);
  EXPECT_GT(countOccurrences(out.str(), "<line"), 0);
}

TEST(SvgWriter, HighlightUsesDistinctFill) {
  const auto db = crp::testing::makeTinyDatabase();
  SvgOptions options;
  options.highlight = {1};
  std::ostringstream out;
  writeSvg(out, db, nullptr, options);
  EXPECT_NE(out.str().find("#d62728"), std::string::npos);
}

TEST(SvgWriter, PinDotsOptional) {
  const auto db = crp::testing::makeTinyDatabase();
  SvgOptions off;
  std::ostringstream a;
  writeSvg(a, db, nullptr, off);
  EXPECT_EQ(countOccurrences(a.str(), "<circle"), 0);
  SvgOptions on;
  on.drawPins = true;
  std::ostringstream b;
  writeSvg(b, db, nullptr, on);
  EXPECT_GT(countOccurrences(b.str(), "<circle"), 0);
}

TEST(SvgWriter, CongestionUnderlayAddsRects) {
  bmgen::BenchmarkSpec spec;
  spec.targetCells = 300;
  spec.utilization = 0.85;
  spec.hotspots = 2;
  spec.seed = 9;
  const auto db = bmgen::generateBenchmark(spec);
  groute::GlobalRouter router(db);
  router.run();
  SvgOptions plain;
  plain.drawCongestion = false;
  SvgOptions heat;
  heat.drawCongestion = true;
  std::ostringstream a, b;
  writeSvg(a, db, &router, plain);
  writeSvg(b, db, &router, heat);
  EXPECT_GE(countOccurrences(b.str(), "<rect"),
            countOccurrences(a.str(), "<rect"));
}

TEST(SvgWriter, LayerPaletteCycles) {
  EXPECT_EQ(layerColor(0), layerColor(8));
  EXPECT_NE(layerColor(0), layerColor(1));
}

}  // namespace
}  // namespace crp::viz
