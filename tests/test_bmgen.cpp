// Tests for the benchmark generator and suite: legality by
// construction, single-driver netlists, determinism, utilization
// targets, hotspot blockages, and round-trip through LEF/DEF.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "bmgen/generator.hpp"
#include "bmgen/suite.hpp"
#include "db/legality.hpp"
#include "lefdef/def_parser.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/lef_parser.hpp"
#include "lefdef/lef_writer.hpp"

namespace crp::bmgen {
namespace {

BenchmarkSpec smallSpec() {
  BenchmarkSpec spec;
  spec.name = "unit";
  spec.targetCells = 400;
  spec.seed = 9;
  spec.hotspots = 1;
  return spec;
}

TEST(Generator, PlacementIsLegal) {
  const auto db = generateBenchmark(smallSpec());
  EXPECT_TRUE(db::isPlacementLegal(db));
}

TEST(Generator, CellCountNearTarget) {
  const auto db = generateBenchmark(smallSpec());
  EXPECT_GE(db.numCells(), 380);
  EXPECT_LE(db.numCells(), 400);
}

TEST(Generator, UtilizationNearTarget) {
  BenchmarkSpec spec = smallSpec();
  spec.utilization = 0.85;
  const auto db = generateBenchmark(spec);
  EXPECT_NEAR(db.utilization(), 0.85, 0.08);
}

TEST(Generator, NetlistIsSingleDriverSingleLoad) {
  const auto db = generateBenchmark(smallSpec());
  // Every (cell, pin) pair appears in at most one net.
  std::unordered_set<long> seen;
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    for (const db::NetPin& pin : db.net(n).pins) {
      if (pin.isIo()) continue;
      const long key = static_cast<long>(pin.compPin().cell) * 1000 +
                       pin.compPin().pin;
      EXPECT_TRUE(seen.insert(key).second)
          << "pin reused: cell " << pin.compPin().cell << " pin "
          << pin.compPin().pin;
    }
  }
}

TEST(Generator, NetsHaveDriverAndSinks) {
  const auto db = generateBenchmark(smallSpec());
  EXPECT_GT(db.numNets(), 0);
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    EXPECT_GE(db.net(n).pins.size(), 2u) << db.net(n).name;
  }
}

TEST(Generator, DeterministicForSeed) {
  const auto a = generateBenchmark(smallSpec());
  const auto b = generateBenchmark(smallSpec());
  ASSERT_EQ(a.numCells(), b.numCells());
  ASSERT_EQ(a.numNets(), b.numNets());
  for (db::CellId c = 0; c < a.numCells(); ++c) {
    EXPECT_EQ(a.cell(c).pos, b.cell(c).pos);
    EXPECT_EQ(a.cell(c).macro, b.cell(c).macro);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  BenchmarkSpec specA = smallSpec();
  BenchmarkSpec specB = smallSpec();
  specB.seed = 77;
  const auto a = generateBenchmark(specA);
  const auto b = generateBenchmark(specB);
  int samePos = 0;
  const int n = std::min(a.numCells(), b.numCells());
  for (db::CellId c = 0; c < n; ++c) {
    samePos += (a.cell(c).pos == b.cell(c).pos);
  }
  EXPECT_LT(samePos, n / 2);
}

TEST(Generator, HotspotsEmitBlockages) {
  BenchmarkSpec spec = smallSpec();
  spec.hotspots = 2;
  const auto db = generateBenchmark(spec);
  EXPECT_EQ(db.design().blockages.size(), 4u);  // 2 layers per hotspot
  spec.hotspots = 0;
  const auto clean = generateBenchmark(spec);
  EXPECT_TRUE(clean.design().blockages.empty());
}

TEST(Generator, TracksCoverAllLayers) {
  const auto db = generateBenchmark(smallSpec());
  EXPECT_EQ(db.design().tracks.size(),
            static_cast<std::size_t>(db.tech().numLayers()));
  EXPECT_GT(db.design().gcellCountX, 2);
  EXPECT_GT(db.design().gcellCountY, 2);
}

TEST(Generator, MostNetsAreLocal) {
  BenchmarkSpec spec = smallSpec();
  spec.localityBias = 0.9;
  const auto db = generateBenchmark(spec);
  int local = 0;
  int total = 0;
  const geom::Coord radius = db.design().dieArea.width() / 3;
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    if (db.net(n).pins.size() < 2) continue;
    ++total;
    if (db.netHpwl(n) < radius) ++local;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(local) / total, 0.5);
}

TEST(Generator, RoundTripsThroughLefDef) {
  const auto db = generateBenchmark(smallSpec());
  std::ostringstream lef, def;
  lefdef::writeLef(lef, db.tech(), db.library());
  lefdef::writeDef(def, db);
  const auto [tech2, lib2] = lefdef::parseLef(lef.str());
  const auto design2 = lefdef::parseDef(def.str(), tech2, lib2);
  db::Database db2(tech2, lib2, design2);
  EXPECT_EQ(db2.numCells(), db.numCells());
  EXPECT_EQ(db2.numNets(), db.numNets());
  EXPECT_EQ(db2.totalHpwl(), db.totalHpwl());
  EXPECT_TRUE(db::isPlacementLegal(db2));
}

// ---- suite -----------------------------------------------------------------

TEST(Suite, HasTenEntriesMatchingTable2) {
  const auto suite = ispdLikeSuite();
  ASSERT_EQ(suite.size(), 10u);
  EXPECT_EQ(suite[0].name, "crp_test1");
  EXPECT_EQ(suite[0].paperCells, 8000);
  EXPECT_EQ(suite[0].paperNets, 3000);
  EXPECT_EQ(suite[0].techNode, 45);
  EXPECT_EQ(suite[9].name, "crp_test10");
  EXPECT_EQ(suite[9].paperCells, 290000);
  EXPECT_EQ(suite[9].techNode, 32);
}

TEST(Suite, ScaledSizesGrowMonotonically) {
  const auto suite = ispdLikeSuite(40.0);
  EXPECT_LT(suite[0].spec.targetCells, suite[4].spec.targetCells);
  EXPECT_LT(suite[4].spec.targetCells, suite[9].spec.targetCells);
}

TEST(Suite, CongestedDesignsHaveHotspots) {
  const auto suite = ispdLikeSuite();
  EXPECT_EQ(suite[1].hotspots, 0);  // test2: less congested ([18] wins)
  EXPECT_EQ(suite[2].hotspots, 0);  // test3
  EXPECT_GT(suite[6].hotspots, 0);  // test7: congested
}

TEST(Suite, SmallestEntryGeneratesQuickly) {
  const auto suite = ispdLikeSuite(40.0);
  const auto db = generateBenchmark(suite[0].spec);
  EXPECT_TRUE(db::isPlacementLegal(db));
  EXPECT_GT(db.numNets(), 10);
}

}  // namespace
}  // namespace crp::bmgen
