// Tests for the ISPD-2018-style evaluator.
#include <gtest/gtest.h>

#include "eval/evaluator.hpp"
#include "test_helpers.hpp"

namespace crp::eval {
namespace {

TEST(Evaluator, CollectMetricsCopiesFields) {
  droute::DetailedRouteStats stats;
  stats.wirelengthDbu = 1000;
  stats.viaCount = 42;
  stats.shortViolations = 2;
  stats.spacingViolations = 1;
  stats.minAreaViolations = 0;
  stats.openNets = 3;
  const Metrics m = collectMetrics(stats);
  EXPECT_EQ(m.wirelengthDbu, 1000);
  EXPECT_EQ(m.viaCount, 42);
  EXPECT_EQ(m.totalDrvs(), 3);
  EXPECT_EQ(m.openNets, 3);
}

TEST(Evaluator, ScoreUsesContestWeights) {
  const auto db = crp::testing::makeTinyDatabase();
  Metrics m;
  m.wirelengthDbu = 2000;  // pitch 20 -> 100 wire units
  m.viaCount = 10;
  const double s = score(m, db);
  EXPECT_DOUBLE_EQ(s, 0.5 * 100 + 2.0 * 10);
}

TEST(Evaluator, ScorePenalizesDrvsAndOpens) {
  const auto db = crp::testing::makeTinyDatabase();
  Metrics m;
  m.shorts = 1;
  m.openNets = 2;
  EXPECT_DOUBLE_EQ(score(m, db), 500.0 + 1000.0);
}

TEST(Evaluator, ImprovementPercent) {
  EXPECT_DOUBLE_EQ(improvementPercent(100.0, 98.0), 2.0);
  EXPECT_DOUBLE_EQ(improvementPercent(100.0, 102.0), -2.0);
  EXPECT_DOUBLE_EQ(improvementPercent(0.0, 5.0), 0.0);
}

TEST(Evaluator, CompareRunsBuildsTableRow) {
  Metrics base;
  base.wirelengthDbu = 1000;
  base.viaCount = 100;
  base.shorts = 1;
  Metrics ours;
  ours.wirelengthDbu = 990;
  ours.viaCount = 95;
  ours.shorts = 1;
  const ComparisonRow row = compareRuns("crp_test1", base, ours);
  EXPECT_EQ(row.benchmark, "crp_test1");
  EXPECT_NEAR(row.wirelengthImprovePct, 1.0, 1e-9);
  EXPECT_NEAR(row.viaImprovePct, 5.0, 1e-9);
  EXPECT_EQ(row.drvDelta, 0);
}

}  // namespace
}  // namespace crp::eval
