// Unit tests for the design database: tech/library construction,
// connectivity indices, geometry queries, median computation, GCell
// grid mapping and placement legality checking.
#include <gtest/gtest.h>

#include "db/database.hpp"
#include "db/gcell_grid.hpp"
#include "db/legality.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace crp::db {
namespace {

using geom::Point;
using geom::Rect;

// ---- Tech -----------------------------------------------------------------

TEST(Tech, MakeDefaultBuildsAlternatingStack) {
  const Tech tech = Tech::makeDefault(6, 20, 6, 8, 120, 10, 100);
  ASSERT_EQ(tech.numLayers(), 6);
  EXPECT_EQ(tech.layer(0).dir, LayerDir::kHorizontal);
  EXPECT_EQ(tech.layer(1).dir, LayerDir::kVertical);
  EXPECT_EQ(tech.layer(5).dir, LayerDir::kVertical);
  EXPECT_EQ(tech.cutLayers().size(), 5u);
  EXPECT_EQ(tech.vias().size(), 5u);
  for (int i = 0; i + 1 < 6; ++i) {
    ASSERT_NE(tech.defaultVia(i), nullptr);
    EXPECT_EQ(tech.defaultVia(i)->below, i);
  }
  EXPECT_EQ(tech.defaultVia(5), nullptr);
}

TEST(Tech, FindLayerByName) {
  const Tech tech = Tech::makeDefault(3, 20, 6, 8, 120, 10, 100);
  EXPECT_EQ(tech.findLayer("Metal2"), 1);
  EXPECT_FALSE(tech.findLayer("Metal9").has_value());
}

TEST(Tech, AddViaValidatesLayerRange) {
  Tech tech = Tech::makeDefault(2, 20, 6, 8, 120, 10, 100);
  ViaDef bad;
  bad.below = 1;  // layer 2 does not exist above
  EXPECT_THROW(tech.addVia(bad), std::out_of_range);
}

TEST(Tech, OtherDirFlips) {
  EXPECT_EQ(otherDir(LayerDir::kHorizontal), LayerDir::kVertical);
  EXPECT_EQ(otherDir(LayerDir::kVertical), LayerDir::kHorizontal);
}

// ---- Library ----------------------------------------------------------------

TEST(Library, MakeDefaultProvidesStandardCells) {
  const Library lib = Library::makeDefault(10, 100, 0);
  EXPECT_GE(lib.numMacros(), 8);
  ASSERT_TRUE(lib.findMacro("INV_X1").has_value());
  const Macro& inv = lib.macro(*lib.findMacro("INV_X1"));
  EXPECT_EQ(inv.width, 10);
  EXPECT_EQ(inv.height, 100);
  ASSERT_EQ(inv.pins.size(), 2u);
  EXPECT_EQ(inv.pins[0].dir, PinDir::kInput);
  EXPECT_EQ(inv.pins[1].dir, PinDir::kOutput);
  EXPECT_EQ(inv.pins[1].name, "Y");
}

TEST(Library, PinAccessPointsInsideMacro) {
  const Library lib = Library::makeDefault(10, 100, 0);
  for (const Macro& macro : lib.macros()) {
    const Rect box{0, 0, macro.width, macro.height};
    for (const MacroPin& pin : macro.pins) {
      EXPECT_TRUE(box.contains(pin.accessPoint()))
          << macro.name << "/" << pin.name;
    }
  }
}

TEST(Library, DuplicateMacroNameRejected) {
  Library lib;
  Macro m;
  m.name = "X";
  lib.addMacro(m);
  EXPECT_THROW(lib.addMacro(m), std::invalid_argument);
}

TEST(Library, WidthInSitesRoundsUp) {
  Macro m;
  m.width = 25;
  EXPECT_EQ(m.widthInSites(10), 3);
  m.width = 30;
  EXPECT_EQ(m.widthInSites(10), 3);
}

// ---- Database --------------------------------------------------------------

TEST(Database, LookupByName) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_EQ(db.findCell("c2"), 2);
  EXPECT_EQ(db.findCell("zz"), kInvalidId);
  EXPECT_EQ(db.findNet("n1"), 1);
  EXPECT_EQ(db.findNet("zz"), kInvalidId);
}

TEST(Database, CellRect) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_EQ(db.cellRect(0), (Rect{100, 0, 110, 100}));
}

TEST(Database, NetsOfCell) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_EQ(db.netsOfCell(0), (std::vector<NetId>{0, 2}));
  EXPECT_EQ(db.netsOfCell(1), (std::vector<NetId>{0, 1}));
  EXPECT_EQ(db.netsOfCell(3), (std::vector<NetId>{1}));
}

TEST(Database, ConnectedCells) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_EQ(db.connectedCells(0), (std::vector<CellId>{1}));
  EXPECT_EQ(db.connectedCells(1), (std::vector<CellId>{0, 2, 3}));
}

TEST(Database, CellsOfNet) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_EQ(db.cellsOfNet(1), (std::vector<CellId>{1, 2, 3}));
  EXPECT_EQ(db.cellsOfNet(2), (std::vector<CellId>{0}));
}

TEST(Database, PinPositionUsesTransform) {
  const auto db = crp::testing::makeTinyDatabase();
  // c0 at (100, 0), INV pin A access point is inside the cell rect.
  const Point p = db.pinPosition(CompPinRef{0, 0});
  EXPECT_TRUE(db.cellRect(0).contains(p));
}

TEST(Database, NetHpwlMatchesBoundingBox) {
  const auto db = crp::testing::makeTinyDatabase();
  const Rect box = db.netBoundingBox(1);
  EXPECT_EQ(db.netHpwl(1), box.halfPerimeter());
  EXPECT_GT(db.netHpwl(1), 0);
}

TEST(Database, TotalHpwlIsSum) {
  const auto db = crp::testing::makeTinyDatabase();
  Coord sum = 0;
  for (NetId n = 0; n < db.numNets(); ++n) sum += db.netHpwl(n);
  EXPECT_EQ(db.totalHpwl(), sum);
}

TEST(Database, MoveCellUpdatesGeometry) {
  auto db = crp::testing::makeTinyDatabase();
  const Coord before = db.netHpwl(0);
  db.moveCell(0, Point{490, 100});  // move c0 next to c1
  EXPECT_EQ(db.cellRect(0).xlo, 490);
  EXPECT_LT(db.netHpwl(0), before);
}

TEST(Database, MedianPositionPullsTowardNeighbors) {
  const auto db = crp::testing::makeTinyDatabase();
  // c3 is connected only to net n1 (cells c1, c2); its median should be
  // within the x-range spanned by c1/c2 pin positions.
  const Point med = db.medianPosition(3);
  EXPECT_GE(med.x, 500);
  EXPECT_LE(med.x, 810);
}

TEST(Database, MedianOfIsolatedCellIsOwnPosition) {
  using namespace crp::db;
  Tech tech = Tech::makeDefault(2, 20, 6, 8, 120, 10, 100);
  Library lib = Library::makeDefault(10, 100, 0);
  Design design;
  design.dieArea = Rect{0, 0, 100, 100};
  design.rows.push_back(Row{"r0", Point{0, 0}, 10, geom::Orientation::kN});
  Component c;
  c.name = "lonely";
  c.macro = *lib.findMacro("INV_X1");
  c.pos = Point{30, 0};
  design.components.push_back(c);
  Database db(std::move(tech), std::move(lib), std::move(design));
  EXPECT_EQ(db.medianPosition(0), (Point{30, 0}));
}

TEST(Database, RowAt) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_EQ(db.rowAt(0), 0);
  EXPECT_EQ(db.rowAt(150), 1);
  EXPECT_EQ(db.rowAt(499), 4);
  EXPECT_EQ(db.rowAt(500), kInvalidId);
  EXPECT_EQ(db.rowAt(-1), kInvalidId);
}

TEST(Database, SnapToSiteRow) {
  const auto db = crp::testing::makeTinyDatabase();
  const int inv = *db.library().findMacro("INV_X1");
  const Point p = db.snapToSiteRow(Point{123, 147}, inv);
  EXPECT_EQ(p.y, 100);
  EXPECT_EQ(p.x % 10, 0);
  EXPECT_EQ(p.x, 120);
}

TEST(Database, SnapClampsToRowEnds) {
  const auto db = crp::testing::makeTinyDatabase();
  const int inv = *db.library().findMacro("INV_X1");
  const Point left = db.snapToSiteRow(Point{-50, 0}, inv);
  EXPECT_EQ(left.x, 0);
  const Point right = db.snapToSiteRow(Point{5000, 0}, inv);
  EXPECT_EQ(right.x, 1000 - 10);
}

TEST(Database, UtilizationInUnitRange) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_GT(db.utilization(), 0.0);
  EXPECT_LT(db.utilization(), 1.0);
}


TEST(Database, CopyIsIndependent) {
  // The bench harness copies a prebuilt Database per flow; mutating the
  // copy must not leak into the original.
  const auto original = crp::testing::makeTinyDatabase();
  auto copy = original;
  copy.moveCell(0, geom::Point{900, 400});
  EXPECT_EQ(original.cell(0).pos, (Point{100, 0}));
  EXPECT_EQ(copy.cell(0).pos, (Point{900, 400}));
  EXPECT_NE(original.totalHpwl(), copy.totalHpwl());
  // Connectivity indices remain valid in both.
  EXPECT_EQ(original.netsOfCell(0), copy.netsOfCell(0));
}

TEST(Database, PinShapesTransformToDieFrame) {
  const auto db = crp::testing::makeTinyDatabase();
  const auto shapes = db.pinShapes(CompPinRef{0, 0});
  ASSERT_FALSE(shapes.empty());
  // Every shape lies inside the placed cell rect.
  for (const auto& shape : shapes) {
    EXPECT_TRUE(db.cellRect(0).contains(shape.rect)) << shape.rect;
  }
}

TEST(Database, UtilizationZeroWithoutRows) {
  using namespace crp::db;
  Tech tech = Tech::makeDefault(2, 20, 6, 8, 120, 10, 100);
  Library lib = Library::makeDefault(10, 100, 0);
  Design design;
  design.dieArea = geom::Rect{0, 0, 100, 100};
  Database db(std::move(tech), std::move(lib), std::move(design));
  EXPECT_DOUBLE_EQ(db.utilization(), 0.0);
}

// ---- GCellGrid ---------------------------------------------------------------

TEST(GCellGrid, PartitionCoversDieExactly) {
  const GCellGrid grid(Rect{0, 0, 1000, 500}, 10, 5);
  EXPECT_EQ(grid.xBounds().front(), 0);
  EXPECT_EQ(grid.xBounds().back(), 1000);
  EXPECT_EQ(grid.yBounds().front(), 0);
  EXPECT_EQ(grid.yBounds().back(), 500);
  Coord area = 0;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 5; ++y) area += grid.cellRect(GCell{x, y}).area();
  }
  EXPECT_EQ(area, 1000 * 500);
}

TEST(GCellGrid, CellAtMapsPointsCorrectly) {
  const GCellGrid grid(Rect{0, 0, 1000, 500}, 10, 5);
  EXPECT_EQ(grid.cellAt(Point{0, 0}), (GCell{0, 0}));
  EXPECT_EQ(grid.cellAt(Point{99, 99}), (GCell{0, 0}));
  EXPECT_EQ(grid.cellAt(Point{100, 100}), (GCell{1, 1}));
  EXPECT_EQ(grid.cellAt(Point{999, 499}), (GCell{9, 4}));
  // Clamping outside the die.
  EXPECT_EQ(grid.cellAt(Point{-5, -5}), (GCell{0, 0}));
  EXPECT_EQ(grid.cellAt(Point{2000, 2000}), (GCell{9, 4}));
}

TEST(GCellGrid, UnevenDivisionAbsorbsRemainder) {
  const GCellGrid grid(Rect{0, 0, 103, 50}, 10, 5);
  Coord width = 0;
  for (int x = 0; x < 10; ++x) width += grid.cellRect(GCell{x, 0}).width();
  EXPECT_EQ(width, 103);
}

TEST(GCellGrid, CenterDistanceOfNeighbors) {
  const GCellGrid grid(Rect{0, 0, 1000, 500}, 10, 5);
  EXPECT_EQ(grid.centerDistance(GCell{0, 0}, GCell{1, 0}), 100);
  EXPECT_EQ(grid.centerDistance(GCell{0, 0}, GCell{0, 1}), 100);
}

TEST(GCellGrid, FlatIndexIsBijective) {
  const GCellGrid grid(Rect{0, 0, 100, 100}, 7, 3);
  std::vector<bool> seen(grid.numCells(), false);
  for (int x = 0; x < 7; ++x) {
    for (int y = 0; y < 3; ++y) {
      const int idx = grid.flatIndex(GCell{x, y});
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, grid.numCells());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

TEST(GCellGrid, RejectsDegenerateInput) {
  EXPECT_THROW(GCellGrid(Rect{0, 0, 10, 10}, 0, 5), std::invalid_argument);
  EXPECT_THROW(GCellGrid(Rect{}, 2, 2), std::invalid_argument);
}

// Property: every point maps to the gcell whose rect contains it.
TEST(GCellGridProperty, CellAtConsistentWithCellRect) {
  util::Rng rng(42);
  const GCellGrid grid(Rect{13, 7, 1017, 511}, 9, 6);
  for (int trial = 0; trial < 1000; ++trial) {
    const Point p{rng.uniformInt(13, 1016), rng.uniformInt(7, 510)};
    const GCell g = grid.cellAt(p);
    EXPECT_TRUE(grid.cellRect(g).contains(p));
  }
}

// ---- legality -----------------------------------------------------------------

TEST(Legality, TinyDatabaseIsLegal) {
  const auto db = crp::testing::makeTinyDatabase();
  EXPECT_TRUE(isPlacementLegal(db));
}

TEST(Legality, DetectsOverlap) {
  auto db = crp::testing::makeTinyDatabase();
  db.moveCell(0, db.cell(1).pos);  // stack c0 on c1
  const auto violations = checkPlacement(db);
  bool foundOverlap = false;
  for (const auto& v : violations) {
    if (v.kind == ViolationKind::kOverlap) foundOverlap = true;
  }
  EXPECT_TRUE(foundOverlap);
}

TEST(Legality, DetectsOffSite) {
  auto db = crp::testing::makeTinyDatabase();
  db.moveCell(0, geom::Point{103, 0});
  const auto violations = checkCell(db, 0);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().kind, ViolationKind::kOffSite);
}

TEST(Legality, DetectsOffRow) {
  auto db = crp::testing::makeTinyDatabase();
  db.moveCell(0, geom::Point{100, 50});
  const auto violations = checkCell(db, 0);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().kind, ViolationKind::kOffRow);
}

TEST(Legality, DetectsOutsideDie) {
  auto db = crp::testing::makeTinyDatabase();
  db.moveCell(0, geom::Point{995, 0});  // 10-wide cell, die ends at 1000
  const auto violations = checkCell(db, 0);
  bool outside = false;
  for (const auto& v : violations) {
    if (v.kind == ViolationKind::kOutsideDie) outside = true;
  }
  EXPECT_TRUE(outside);
}

TEST(Legality, TouchingCellsAreLegal) {
  auto db = crp::testing::makeTinyDatabase();
  db.moveCell(0, geom::Point{490, 100});  // c1 at 500, c0 is 10 wide
  EXPECT_TRUE(checkCell(db, 0).empty());
  EXPECT_TRUE(isPlacementLegal(db));
}

TEST(Legality, DescribeProducesText) {
  auto db = crp::testing::makeTinyDatabase();
  db.moveCell(0, db.cell(1).pos);
  for (const auto& v : checkPlacement(db)) {
    EXPECT_FALSE(v.describe(db).empty());
  }
}

}  // namespace
}  // namespace crp::db
