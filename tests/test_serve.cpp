// Serve daemon tests: wire framing, in-process session jobs, the
// socket end-to-end chain, and — the isolation contract the per-session
// ObsContext refactor exists for — bit-identical RunReport
// fingerprints between serial and interleaved sessions.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/run_ledger.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/thread_pool.hpp"

namespace crp::serve {
namespace {

// ---- protocol framing ------------------------------------------------------

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

TEST(ServeProtocol, FrameRoundTrip) {
  SocketPair pair;
  const std::string big(1 << 20, 'x');
  // The 1 MiB frame exceeds the socketpair buffer, so writes must be
  // drained concurrently or the writer blocks forever.
  std::thread writer([&] {
    writeFrame(pair.fds[0], "hello");
    writeFrame(pair.fds[0], "");  // empty payload is a legal frame
    writeFrame(pair.fds[0], big);
  });

  std::string payload;
  ASSERT_TRUE(readFrame(pair.fds[1], payload));
  EXPECT_EQ(payload, "hello");
  ASSERT_TRUE(readFrame(pair.fds[1], payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(readFrame(pair.fds[1], payload));
  EXPECT_EQ(payload, big);
  writer.join();
}

TEST(ServeProtocol, CleanEofReturnsFalse) {
  SocketPair pair;
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  std::string payload;
  EXPECT_FALSE(readFrame(pair.fds[1], payload));
}

TEST(ServeProtocol, TruncatedFrameThrows) {
  SocketPair pair;
  // Header promises 10 bytes; only 3 arrive before EOF.
  const unsigned char header[4] = {0, 0, 0, 10};
  ASSERT_EQ(::write(pair.fds[0], header, 4), 4);
  ASSERT_EQ(::write(pair.fds[0], "abc", 3), 3);
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  std::string payload;
  EXPECT_THROW(readFrame(pair.fds[1], payload), ProtocolError);
}

TEST(ServeProtocol, OversizedLengthThrows) {
  SocketPair pair;
  const std::uint32_t length = kMaxFrameBytes + 1;
  const unsigned char header[4] = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8),
      static_cast<unsigned char>(length)};
  ASSERT_EQ(::write(pair.fds[0], header, 4), 4);
  std::string payload;
  EXPECT_THROW(readFrame(pair.fds[1], payload), ProtocolError);
}

TEST(ServeProtocol, MalformedJsonFrameThrows) {
  SocketPair pair;
  writeFrame(pair.fds[0], "{not json");
  obs::Json message;
  EXPECT_THROW(readMessage(pair.fds[1], message), ProtocolError);
}

TEST(ServeProtocol, MessageRoundTripPreservesDocument) {
  SocketPair pair;
  obs::Json request = obs::Json::object();
  request.set("op", "bmgen");
  request.set("cells", 400);
  request.set("util", 0.85);
  writeMessage(pair.fds[0], request);
  obs::Json decoded;
  ASSERT_TRUE(readMessage(pair.fds[1], decoded));
  EXPECT_EQ(decoded, request);
}

// ---- in-process session jobs ----------------------------------------------

obs::Json bmgenParams(int cells, std::uint64_t seed) {
  obs::Json params = obs::Json::object();
  params.set("cells", cells);
  params.set("seed", seed);
  return params;
}

obs::Json runParams(int k) {
  obs::Json params = obs::Json::object();
  params.set("k", k);
  params.set("snapshots", 1);
  return params;
}

TEST(ServeSession, BmgenThenRunStreamsOneEventPerIteration) {
  util::ThreadPool pool(2);
  SessionManager manager;
  auto session = manager.open("t", pool);
  ASSERT_NE(session, nullptr);

  const obs::Json generated = runBmgenJob(*session, bmgenParams(200, 3));
  EXPECT_GT(generated.at("cells").asInt(), 0);
  EXPECT_GT(generated.at("nets").asInt(), 0);

  std::vector<obs::Json> events;
  obs::Json params = runParams(2);
  {
    obs::Json perturb = obs::Json::object();
    perturb.set("seed", 7);
    perturb.set("frac", 0.05);
    params.set("perturb", std::move(perturb));
  }
  const obs::Json result = runRunJob(
      *session, params, [&](const obs::Json& e) { events.push_back(e); });

  ASSERT_EQ(events.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    const obs::Json& event = events[static_cast<std::size_t>(i)];
    EXPECT_EQ(event.at("event").asString(), "iteration");
    EXPECT_EQ(event.at("iteration").asInt(), i);
    EXPECT_NE(event.find("timeline"), nullptr);
    EXPECT_NE(event.find("heatmapDelta"), nullptr);
  }
  EXPECT_NE(result.find("fingerprint"), nullptr);
  EXPECT_NE(result.find("report"), nullptr);

  // The post-run perturb delta must apply cleanly through the eco job,
  // and the report job must agree with eco's fingerprint afterwards.
  obs::Json ecoReq = obs::Json::object();
  ecoReq.set("delta", result.at("ecoDelta"));
  ecoReq.set("k", 1);
  std::vector<obs::Json> ecoEvents;
  const obs::Json ecoResult = runEcoJob(
      *session, ecoReq, [&](const obs::Json& e) { ecoEvents.push_back(e); });
  EXPECT_EQ(ecoEvents.size(), 1u);
  EXPECT_GT(ecoResult.at("eco").at("dirtyNets").asInt(), 0);
  const obs::Json reported = runReportJob(*session);
  EXPECT_EQ(reported.at("fingerprint"), ecoResult.at("fingerprint"));
}

TEST(ServeSession, JobsWithoutDesignOrRunFail) {
  util::ThreadPool pool(1);
  SessionManager manager;
  auto session = manager.open("t", pool);
  EXPECT_THROW(runRunJob(*session, runParams(1), {}), std::runtime_error);
  EXPECT_THROW(runReportJob(*session), std::runtime_error);
  obs::Json ecoReq = obs::Json::object();
  EXPECT_THROW(runEcoJob(*session, ecoReq, {}), std::runtime_error);
}

TEST(ServeSession, ManagerEnforcesCapacityAndClose) {
  util::ThreadPool pool(1);
  SessionManager manager(/*maxSessions=*/1);
  auto first = manager.open("a", pool);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(manager.open("b", pool), nullptr);
  EXPECT_TRUE(manager.close(first->id));
  EXPECT_FALSE(manager.close(first->id));
  EXPECT_NE(manager.open("b", pool), nullptr);
  EXPECT_EQ(manager.count(), 1u);
}

/// The isolation proof: two sessions interleaved on one shared pool
/// produce RunReport fingerprints bit-identical to the same specs run
/// serially.  Fingerprints cover the per-context metric counter deltas
/// (pricing, ILP, router), so any cross-session bleed — a counter
/// landing in the wrong registry, a heatmap in the wrong series —
/// shows up as a diff here.
TEST(ServeSession, InterleavedSessionsMatchSerialFingerprints) {
  util::ThreadPool pool(4);

  const auto chain = [&pool](SessionManager& manager, int cells,
                             std::uint64_t seed) {
    auto session = manager.open("s" + std::to_string(seed), pool);
    EXPECT_NE(session, nullptr);
    runBmgenJob(*session, bmgenParams(cells, seed));
    const obs::Json result = runRunJob(*session, runParams(2), {});
    return result.at("fingerprint").dump();
  };

  SessionManager serial;
  const std::string serialA = chain(serial, 220, 3);
  const std::string serialB = chain(serial, 300, 11);

  SessionManager interleaved;
  std::string threadedA;
  std::string threadedB;
  std::thread ta(
      [&] { threadedA = chain(interleaved, 220, 3); });
  std::thread tb(
      [&] { threadedB = chain(interleaved, 300, 11); });
  ta.join();
  tb.join();

  EXPECT_EQ(serialA, threadedA);
  EXPECT_EQ(serialB, threadedB);
  EXPECT_NE(serialA, serialB);  // distinct designs, distinct reports
}

// ---- socket end-to-end -----------------------------------------------------

std::string tempSocketPath() {
  return "/tmp/crp_serve_t" + std::to_string(::getpid()) + ".sock";
}

const obs::Json& lastFrame(const std::vector<obs::Json>& frames) {
  return frames.back();
}

TEST(ServeDaemon, EndToEndJobChainOverSocket) {
  ServeOptions options;
  options.socketPath = tempSocketPath();
  options.workers = 2;
  Server server(options);
  server.start();
  std::thread loop([&] { server.serve(); });

  {
    Client client(options.socketPath);

    obs::Json hello = obs::Json::object();
    hello.set("op", "hello");
    hello.set("tag", "t0");
    const auto helloFrames = client.call(hello);
    EXPECT_TRUE(lastFrame(helloFrames).at("ok").asBool());
    EXPECT_EQ(lastFrame(helloFrames).at("protocol").asInt(),
              kProtocolVersion);
    EXPECT_EQ(lastFrame(helloFrames).at("tag").asString(), "t0");

    obs::Json open = obs::Json::object();
    open.set("op", "open_session");
    open.set("name", "e2e");
    const auto openFrames = client.call(open);
    ASSERT_TRUE(lastFrame(openFrames).at("ok").asBool());
    const std::int64_t session = lastFrame(openFrames).at("session").asInt();

    obs::Json bmgen = obs::Json::object();
    bmgen.set("op", "bmgen");
    bmgen.set("session", session);
    bmgen.set("cells", 180);
    bmgen.set("seed", 5);
    ASSERT_TRUE(lastFrame(client.call(bmgen)).at("ok").asBool());

    obs::Json run = obs::Json::object();
    run.set("op", "run");
    run.set("session", session);
    run.set("k", 1);
    run.set("snapshots", 1);
    const auto runFrames = client.call(run);
    ASSERT_EQ(runFrames.size(), 2u);  // 1 iteration event + result
    EXPECT_EQ(runFrames[0].at("event").asString(), "iteration");
    EXPECT_TRUE(lastFrame(runFrames).at("ok").asBool());
    EXPECT_NE(lastFrame(runFrames).find("fingerprint"), nullptr);

    obs::Json stats = obs::Json::object();
    stats.set("op", "stats");
    const auto statsFrames = client.call(stats);
    EXPECT_GE(lastFrame(statsFrames).at("jobsCompleted").asInt(), 2);
    EXPECT_EQ(lastFrame(statsFrames).at("sessions").asInt(), 1);

    obs::Json close = obs::Json::object();
    close.set("op", "close_session");
    close.set("session", session);
    EXPECT_TRUE(lastFrame(client.call(close)).at("ok").asBool());

    obs::Json shutdown = obs::Json::object();
    shutdown.set("op", "shutdown");
    EXPECT_TRUE(lastFrame(client.call(shutdown)).at("ok").asBool());
  }
  loop.join();
}

TEST(ServeDaemon, BadRequestsGetErrorFramesNotDisconnects) {
  ServeOptions options;
  options.socketPath = tempSocketPath();
  options.workers = 1;
  Server server(options);
  server.start();
  std::thread loop([&] { server.serve(); });

  {
    Client client(options.socketPath);

    obs::Json unknown = obs::Json::object();
    unknown.set("op", "frobnicate");
    EXPECT_FALSE(lastFrame(client.call(unknown)).at("ok").asBool());

    obs::Json noSession = obs::Json::object();
    noSession.set("op", "run");
    const auto noSessionFrames = client.call(noSession);
    EXPECT_FALSE(lastFrame(noSessionFrames).at("ok").asBool());
    EXPECT_NE(lastFrame(noSessionFrames).find("error"), nullptr);

    obs::Json missingOp = obs::Json::object();
    EXPECT_FALSE(lastFrame(client.call(missingOp)).at("ok").asBool());

    // The connection survived all three errors.
    obs::Json hello = obs::Json::object();
    hello.set("op", "hello");
    EXPECT_TRUE(lastFrame(client.call(hello)).at("ok").asBool());
  }
  server.requestStop();
  loop.join();
}

TEST(ServeDaemon, TelemetryOpsExposeMetricsStatsAndLedger) {
  ServeOptions options;
  options.socketPath = tempSocketPath() + ".telemetry";
  options.workers = 1;
  options.ledgerPath =
      "/tmp/crp_serve_ledger_" + std::to_string(::getpid()) + ".jsonl";
  ::unlink(options.ledgerPath.c_str());
  Server server(options);
  server.start();
  std::thread loop([&] { server.serve(); });

  {
    Client client(options.socketPath);

    obs::Json open = obs::Json::object();
    open.set("op", "open_session");
    const std::int64_t session =
        lastFrame(client.call(open)).at("session").asInt();
    obs::Json bmgen = obs::Json::object();
    bmgen.set("op", "bmgen");
    bmgen.set("session", session);
    bmgen.set("cells", 150);
    bmgen.set("seed", 2);
    ASSERT_TRUE(lastFrame(client.call(bmgen)).at("ok").asBool());
    obs::Json run = obs::Json::object();
    run.set("op", "run");
    run.set("session", session);
    run.set("k", 1);
    ASSERT_TRUE(lastFrame(client.call(run)).at("ok").asBool());

    // stats: uptime, traffic counters, and the per-op breakdown fed by
    // the server's own latency histograms.
    obs::Json statsReq = obs::Json::object();
    statsReq.set("op", "stats");
    const obs::Json stats = lastFrame(client.call(statsReq));
    EXPECT_GE(stats.at("uptimeSeconds").asDouble(), 0.0);
    EXPECT_GT(stats.at("bytesIn").asInt(), 0);
    EXPECT_GT(stats.at("bytesOut").asInt(), 0);
    EXPECT_EQ(stats.at("protocolErrors").asInt(), 0);
    const obs::Json& ops = stats.at("ops");
    ASSERT_NE(ops.find("run"), nullptr);
    EXPECT_EQ(ops.at("run").at("requests").asInt(), 1);
    EXPECT_LE(ops.at("run").at("latencyP50Micros").asDouble(),
              ops.at("run").at("latencyP99Micros").asDouble());

    // Server-wide Prometheus exposition carries the daemon's own
    // instruments; the per-session flavour carries the flow's.
    obs::Json metricsReq = obs::Json::object();
    metricsReq.set("op", "metrics");
    const obs::Json metrics = lastFrame(client.call(metricsReq));
    EXPECT_EQ(metrics.at("contentType").asString(),
              "text/plain; version=0.0.4");
    const std::string text = metrics.at("metrics").asString();
    EXPECT_NE(text.find("# TYPE crp_serve_op_run_latency histogram"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("crp_serve_bytes_in"), std::string::npos);

    metricsReq.set("session", session);
    const std::string sessionText =
        lastFrame(client.call(metricsReq)).at("metrics").asString();
    EXPECT_EQ(sessionText.find("serve_op"), std::string::npos)
        << "session scrape leaked daemon instruments";

    obs::Json shutdown = obs::Json::object();
    shutdown.set("op", "shutdown");
    EXPECT_TRUE(lastFrame(client.call(shutdown)).at("ok").asBool());
  }
  loop.join();

  // The run job landed in the ledger as a serve-run entry.
  const obs::RunLedger::LoadResult loaded =
      obs::RunLedger::load(options.ledgerPath);
  EXPECT_EQ(loaded.skippedLines, 0);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].kind, "serve-run");
  EXPECT_EQ(loaded.entries[0].fingerprintDigest.size(), 16u);
  ::unlink(options.ledgerPath.c_str());
}

}  // namespace
}  // namespace crp::serve
