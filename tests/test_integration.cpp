// End-to-end integration tests: the full paper flow
// (generate -> global route -> CR&P k iterations -> detailed route ->
// evaluate) on small suite-style designs, checking the framework's
// headline invariants: legality everywhere, no open nets, no new DRVs,
// and sane metric movement.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/median_ilp.hpp"
#include "bmgen/generator.hpp"
#include "crp/framework.hpp"
#include "db/legality.hpp"
#include "droute/detailed_router.hpp"
#include "eval/evaluator.hpp"
#include "groute/global_router.hpp"
#include "lefdef/def_writer.hpp"
#include "lefdef/guide_io.hpp"

namespace crp {
namespace {

bmgen::BenchmarkSpec testSpec(int cells, int hotspots, std::uint64_t seed) {
  bmgen::BenchmarkSpec spec;
  spec.name = "integration";
  spec.targetCells = cells;
  spec.hotspots = hotspots;
  spec.seed = seed;
  spec.utilization = 0.8;
  return spec;
}

eval::Metrics routeAndEvaluate(const db::Database& db,
                               groute::GlobalRouter& router) {
  droute::DetailedRouter detailed(db, router.buildGuides());
  return eval::collectMetrics(detailed.run());
}

TEST(Integration, BaselineFlowProducesCleanRouting) {
  auto db = bmgen::generateBenchmark(testSpec(500, 1, 3));
  groute::GlobalRouter router(db);
  const auto grStats = router.run();
  EXPECT_EQ(grStats.openNets, 0);
  const eval::Metrics metrics = routeAndEvaluate(db, router);
  EXPECT_EQ(metrics.openNets, 0);
  EXPECT_GT(metrics.wirelengthDbu, 0);
  EXPECT_GT(metrics.viaCount, 0);
}

TEST(Integration, CrpFlowPreservesInvariants) {
  auto db = bmgen::generateBenchmark(testSpec(500, 2, 4));
  groute::GlobalRouter router(db);
  router.run();
  const eval::Metrics before = routeAndEvaluate(db, router);

  core::CrpOptions options;
  options.iterations = 3;
  options.seed = 11;
  core::CrpFramework framework(db, router, options);
  const auto report = framework.run();

  EXPECT_TRUE(db::isPlacementLegal(db));
  EXPECT_EQ(router.stats().openNets, 0);
  const eval::Metrics after = routeAndEvaluate(db, router);
  EXPECT_EQ(after.openNets, 0);
  // "No new DRVs" headline: the framework must not create violations.
  // Residual pin-access shorts are stochastic in the gridded detailed
  // router (+-a handful either way when any cell moves), so allow a
  // small absolute band here; the aggregate non-regression is measured
  // by bench_table3 across the whole suite.
  EXPECT_LE(after.totalDrvs(),
            before.totalDrvs() + std::max(10, before.totalDrvs()));
  // Metrics stay in a sane band (moves are local and legal).
  EXPECT_LT(static_cast<double>(after.wirelengthDbu),
            1.2 * static_cast<double>(before.wirelengthDbu));
  EXPECT_GT(report.iterations.size(), 0u);
}

TEST(Integration, CrpMovesCellsOnCongestedDesign) {
  auto db = bmgen::generateBenchmark(testSpec(600, 2, 5));
  groute::GlobalRouter router(db);
  router.run();
  core::CrpOptions options;
  options.iterations = 2;
  core::CrpFramework framework(db, router, options);
  const auto report = framework.run();
  int moves = 0;
  for (const auto& iteration : report.iterations) {
    moves += iteration.movedCells;
  }
  EXPECT_GT(moves, 0) << "CR&P made no moves on a congested design";
}

TEST(Integration, BaselineComparatorRunsOnSuiteStyleDesign) {
  auto db = bmgen::generateBenchmark(testSpec(500, 1, 6));
  groute::GlobalRouter router(db);
  router.run();
  const auto result = baseline::runMedianIlpOptimizer(db, router);
  EXPECT_FALSE(result.failed);
  EXPECT_TRUE(db::isPlacementLegal(db));
  const eval::Metrics metrics = routeAndEvaluate(db, router);
  EXPECT_EQ(metrics.openNets, 0);
}

TEST(Integration, OutputsWritableDefAndGuides) {
  auto db = bmgen::generateBenchmark(testSpec(300, 0, 7));
  groute::GlobalRouter router(db);
  router.run();
  core::CrpOptions options;
  options.iterations = 1;
  core::CrpFramework framework(db, router, options);
  framework.run();

  std::ostringstream def;
  lefdef::writeDef(def, db);
  EXPECT_NE(def.str().find("END DESIGN"), std::string::npos);

  std::ostringstream guides;
  lefdef::writeGuides(guides, db, router.buildGuides());
  const auto parsed = lefdef::parseGuides(guides.str(), db.tech());
  EXPECT_EQ(parsed.size(), static_cast<std::size_t>(db.numNets()));
}

TEST(Integration, EvaluatorScoreOrdersDegradedRuns) {
  // A run with artificially inflated vias must score worse.
  auto db = bmgen::generateBenchmark(testSpec(300, 0, 8));
  groute::GlobalRouter router(db);
  router.run();
  const eval::Metrics metrics = routeAndEvaluate(db, router);
  eval::Metrics degraded = metrics;
  degraded.viaCount += 100;
  EXPECT_GT(eval::score(degraded, db), eval::score(metrics, db));
}

}  // namespace
}  // namespace crp
