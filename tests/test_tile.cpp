// Chip-tile spatial domain decomposition tests (docs/tiling.md).
//
// Two layers of coverage:
//
//  * Unit: TileGrid partition geometry — core rects partition the
//    GCell grid exactly for arbitrary R x C (including degenerate
//    grids with empty tiles, single-gcell tiles, and halos larger than
//    the tile) — and TileDemandView delta capture: overlay reads see
//    exactly what the untiled path would, and mergeInto reproduces a
//    direct applyRoute and leaves the view quiescent.
//
//  * Equivalence battery: the full CR&P flow on plain, macro-heavy and
//    mixed-height bmgen designs under tile grids {1x1, 2x2, 4x4, 1x8}
//    x router threads {1, 8} must produce bit-identical state
//    fingerprints, run-report fingerprints and heatmap series — the
//    determinism contract that makes tiling a pure scheduling
//    refinement.  Every tiled run also passes a full DbAuditor pass
//    (demand maps exact, tile partition exact, views quiescent).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bmgen/generator.hpp"
#include "check/audit.hpp"
#include "crp/framework.hpp"
#include "db/legality.hpp"
#include "groute/global_router.hpp"
#include "groute/tile.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "test_helpers.hpp"

namespace crp {
namespace {

using groute::GCellRect;
using groute::TileDemandView;
using groute::TileGrid;
using groute::TileGridSpec;

TileGrid makeGrid(int countX, int countY, int rows, int cols, int halo = -1) {
  TileGridSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.haloGcells = halo;
  return TileGrid(countX, countY, spec, /*conflictMargin=*/2);
}

// ---- TileGrid geometry ------------------------------------------------------

/// The partition-exactness core: every gcell belongs to exactly one
/// core rect, and tileAt agrees with containment.
void expectExactPartition(const TileGrid& tiles) {
  long coreArea = 0;
  for (int t = 0; t < tiles.numTiles(); ++t) {
    coreArea += tiles.tileRect(t).area();
  }
  EXPECT_EQ(coreArea, static_cast<long>(tiles.countX()) * tiles.countY());
  for (int y = 0; y < tiles.countY(); ++y) {
    for (int x = 0; x < tiles.countX(); ++x) {
      const int t = tiles.tileAt(x, y);
      ASSERT_GE(t, 0);
      ASSERT_LT(t, tiles.numTiles());
      EXPECT_TRUE(tiles.tileRect(t).contains(x, y))
          << "gcell (" << x << "," << y << ") not in core of tile " << t;
    }
  }
}

TEST(TileGridGeometry, CoreRectsPartitionTheGrid) {
  const int grids[][2] = {{12, 6}, {16, 16}, {7, 5}};
  const int parts[][2] = {{1, 1}, {2, 2}, {4, 4}, {1, 8}, {3, 5}};
  for (const auto& g : grids) {
    for (const auto& p : parts) {
      SCOPED_TRACE(std::to_string(g[0]) + "x" + std::to_string(g[1]) +
                   " grid, " + std::to_string(p[0]) + "x" +
                   std::to_string(p[1]) + " tiles");
      expectExactPartition(makeGrid(g[0], g[1], p[0], p[1]));
    }
  }
}

TEST(TileGridGeometry, EmptyTilesWhenPartitionExceedsGrid) {
  // 8 rows over 2 gcell rows: most tiles own no gcells.  The partition
  // stays exact, empty tiles never receive gcells or work.
  const TileGrid tiles = makeGrid(4, 2, 8, 2);
  expectExactPartition(tiles);
  int empties = 0;
  for (int t = 0; t < tiles.numTiles(); ++t) {
    if (tiles.tileRect(t).empty()) {
      ++empties;
      EXPECT_TRUE(tiles.haloedRect(t).empty());
      GCellRect rect;
      rect.cover(0, 0);
      EXPECT_NE(tiles.assign(rect), t);
    }
  }
  EXPECT_GT(empties, 0);
  // An empty conflict rect is never assigned anywhere.
  EXPECT_EQ(tiles.assign(GCellRect{}), -1);
}

TEST(TileGridGeometry, SingleGcellTiles) {
  // cols == countX and rows == countY: every core rect is one gcell.
  const TileGrid tiles = makeGrid(4, 4, 4, 4, /*halo=*/0);
  expectExactPartition(tiles);
  for (int t = 0; t < tiles.numTiles(); ++t) {
    EXPECT_EQ(tiles.tileRect(t).area(), 1);
    // halo 0: the haloed rect IS the core rect.
    const GCellRect core = tiles.tileRect(t);
    const GCellRect haloed = tiles.haloedRect(t);
    EXPECT_EQ(core.xlo, haloed.xlo);
    EXPECT_EQ(core.yhi, haloed.yhi);
  }
  GCellRect one;
  one.cover(2, 3);
  EXPECT_EQ(tiles.assign(one), tiles.tileAt(2, 3));
  GCellRect two = one;
  two.cover(3, 3);  // spans two single-gcell tiles -> boundary
  EXPECT_EQ(tiles.assign(two), -1);
}

TEST(TileGridGeometry, HaloLargerThanTileCoversWholeGrid) {
  const TileGrid tiles = makeGrid(8, 8, 2, 2, /*halo=*/100);
  expectExactPartition(tiles);
  for (int t = 0; t < tiles.numTiles(); ++t) {
    const GCellRect haloed = tiles.haloedRect(t);
    EXPECT_EQ(haloed.xlo, 0);
    EXPECT_EQ(haloed.ylo, 0);
    EXPECT_EQ(haloed.xhi, 7);
    EXPECT_EQ(haloed.yhi, 7);
  }
  // With full-grid halos nothing is ever boundary: every rect lands on
  // the tile owning its center gcell.
  GCellRect wide;
  wide.cover(0, 0);
  wide.cover(7, 7);
  const int t = tiles.assign(wide);
  EXPECT_EQ(t, tiles.tileAt(3, 3));
}

TEST(TileGridGeometry, AssignDependsOnGeometryOnly) {
  const TileGrid tiles = makeGrid(12, 6, 2, 2);  // halo = margin = 2
  // Deep inside tile 0's core: local.
  GCellRect inner;
  inner.cover(1, 1);
  inner.cover(2, 2);
  EXPECT_EQ(tiles.assign(inner), 0);
  // Center in tile 0 but reaching past its haloed rect: boundary.
  GCellRect spanning;
  spanning.cover(0, 0);
  spanning.cover(11, 1);
  EXPECT_EQ(tiles.assign(spanning), -1);
  // Same answer on every query — a pure function of the rect.
  EXPECT_EQ(tiles.assign(inner), 0);
}

// ---- TileDemandView ---------------------------------------------------------

TEST(TileDemandViewTest, OverlayReadsAndMergeMatchDirectApply) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  groute::RoutingGraph graph(db);
  groute::RoutingGraph direct(db);

  const bool l0Horizontal =
      graph.layerDir(0) == db::LayerDir::kHorizontal;
  groute::NetRoute route;
  route.routed = true;
  route.segments.push_back(
      l0Horizontal
          ? groute::RouteSegment{groute::GPoint{0, 1, 1},
                                 groute::GPoint{0, 3, 1}}
          : groute::RouteSegment{groute::GPoint{0, 1, 1},
                                 groute::GPoint{0, 1, 3}});
  route.segments.push_back(
      {groute::GPoint{0, 1, 1}, groute::GPoint{1, 1, 1}});  // via

  GCellRect coverage;
  coverage.cover(0, 0);
  coverage.cover(5, 5);
  TileDemandView view(graph.numLayers(), /*tile=*/0, coverage);
  view.applyRouteLocal(route, +1);

  const groute::WireEdge wire{0, 1, 1};
  const groute::ViaEdge via{0, 1, 1};
  const groute::GPoint node{0, 1, 1};

  // The shared graph is untouched...
  EXPECT_EQ(graph.wireUsage(wire), 0.0);
  EXPECT_EQ(graph.viaCount(node), 0);
  {
    // ...but through the overlay the view's deltas are visible, which
    // is exactly what the untiled path would read after applyRoute.
    groute::RoutingGraph::OverlayScope overlay(graph, view);
    EXPECT_EQ(graph.wireUsage(wire), 1.0);
    EXPECT_EQ(graph.viaUsage(via), 1.0);
    EXPECT_EQ(graph.viaCount(node), 1);
    // The overlay binds to one graph: `direct` reads stay raw.
    EXPECT_EQ(direct.wireUsage(wire), 0.0);
  }
  EXPECT_EQ(graph.wireUsage(wire), 0.0);  // scope ended

  direct.applyRoute(route, +1);
  EXPECT_TRUE(view.hasPending());
  view.mergeInto(graph);

  // Merge == direct apply, slot by slot, totals included.
  EXPECT_EQ(graph.wireUsage(wire), direct.wireUsage(wire));
  EXPECT_EQ(graph.viaUsage(via), direct.viaUsage(via));
  EXPECT_EQ(graph.viaCount(node), direct.viaCount(node));
  EXPECT_EQ(graph.totalWireDbu(), direct.totalWireDbu());
  EXPECT_EQ(graph.totalVias(), direct.totalVias());

  // Quiescent after the merge: no pending ops, no delta residue.
  EXPECT_FALSE(view.hasPending());
  EXPECT_EQ(view.wireDelta(wire), 0.0);
  EXPECT_EQ(view.viaDelta(via), 0.0);
  EXPECT_EQ(view.viaCountDelta(node), 0);
}

TEST(TileDemandViewTest, RipUpAndRecommitCancelExactly) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  groute::RoutingGraph graph(db);

  groute::NetRoute route;
  route.routed = true;
  route.segments.push_back(
      graph.layerDir(0) == db::LayerDir::kHorizontal
          ? groute::RouteSegment{groute::GPoint{0, 0, 0},
                                 groute::GPoint{0, 2, 0}}
          : groute::RouteSegment{groute::GPoint{0, 0, 0},
                                 groute::GPoint{0, 0, 2}});
  graph.applyRoute(route, +1);
  const double before = graph.wireUsage(groute::WireEdge{0, 0, 0});

  GCellRect coverage;
  coverage.cover(0, 0);
  coverage.cover(4, 4);
  TileDemandView view(graph.numLayers(), 0, coverage);
  // Rip-up then recommit of the same route inside the view: the merged
  // graph must land exactly where it started (a net's rip-up and new
  // route may share edges; slots must end exact, not approximate).
  view.applyRouteLocal(route, -1);
  view.applyRouteLocal(route, +1);
  {
    groute::RoutingGraph::OverlayScope overlay(graph, view);
    EXPECT_EQ(graph.wireUsage(groute::WireEdge{0, 0, 0}), before);
  }
  view.mergeInto(graph);
  EXPECT_EQ(graph.wireUsage(groute::WireEdge{0, 0, 0}), before);
  EXPECT_FALSE(view.hasPending());
}

// ---- full-flow equivalence battery ------------------------------------------

bmgen::BenchmarkSpec plainSpec() {
  bmgen::BenchmarkSpec spec;
  spec.name = "tile_plain";
  spec.targetCells = 220;
  spec.hotspots = 2;
  spec.seed = 7;
  spec.utilization = 0.8;
  return spec;
}

bmgen::BenchmarkSpec macroSpec() {
  bmgen::BenchmarkSpec spec;
  spec.name = "tile_macro";
  spec.targetCells = 240;
  spec.seed = 13;
  spec.utilization = 0.75;
  spec.hotspots = 1;
  spec.macroCount = 2;
  spec.macroWidthSites = 60;
  spec.macroRowSpan = 6;
  return spec;
}

bmgen::BenchmarkSpec multiRowSpec() {
  bmgen::BenchmarkSpec spec;
  spec.name = "tile_multirow";
  spec.targetCells = 240;
  spec.seed = 17;
  spec.utilization = 0.75;
  spec.hotspots = 1;
  spec.multiRowFrac = 0.25;
  return spec;
}

struct FlowResult {
  std::uint64_t state = 0;    ///< check::flowFingerprint
  std::string report;         ///< RunReport::fingerprint JSON
  std::string heatmaps;       ///< full delta-encoded snapshot series
};

/// One full flow (generate -> GR -> CR&P k=2, snapshots on) under the
/// given tile grid and router thread count; audited end-state.
FlowResult runTiledFlow(const bmgen::BenchmarkSpec& spec, int tileRows,
                        int tileCols, int routerThreads, int haloGcells = -1) {
  obs::EnabledScope enabled(true);
  obs::resetAll();
  auto db = bmgen::generateBenchmark(spec);
  groute::GlobalRouterOptions routerOptions;
  routerOptions.routerThreads = routerThreads;
  groute::GlobalRouter router(db, routerOptions);
  router.run();
  core::CrpOptions options;
  options.iterations = 2;
  options.seed = 11;
  options.routerThreads = routerThreads;
  options.snapshots = true;
  options.tileRows = tileRows;
  options.tileCols = tileCols;
  options.haloGcells = haloGcells;
  core::CrpFramework framework(db, router, options);
  framework.run();
  EXPECT_TRUE(db::isPlacementLegal(db));

  // Demand maps exact, routes valid, tile views quiescent.
  const check::AuditReport audit =
      check::DbAuditor(db, &router).auditAll();
  EXPECT_TRUE(audit.clean()) << audit.summary();

  FlowResult result;
  result.state = check::flowFingerprint(db, router);
  result.report = framework.runReport().fingerprint().dump();
  result.heatmaps = framework.heatmaps().toJson().dump();
  obs::resetAll();
  return result;
}

/// The battery: grids {2x2, 4x4, 1x8} x router threads {1, 8} against
/// the untiled serial reference — state fingerprint, report
/// fingerprint and heatmap series all bit-identical.
void expectTileEquivalence(const bmgen::BenchmarkSpec& spec) {
  const FlowResult reference = runTiledFlow(spec, 1, 1, 1);
  const int grids[][2] = {{2, 2}, {4, 4}, {1, 8}};
  for (const auto& g : grids) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(spec.name + ": " + std::to_string(g[0]) + "x" +
                   std::to_string(g[1]) + " tiles, " +
                   std::to_string(threads) + " router thread(s)");
      const FlowResult tiled = runTiledFlow(spec, g[0], g[1], threads);
      EXPECT_EQ(tiled.state, reference.state)
          << "state fingerprint diverges from untiled serial reference";
      EXPECT_EQ(tiled.report, reference.report)
          << "run-report fingerprint diverges";
      EXPECT_EQ(tiled.heatmaps, reference.heatmaps)
          << "heatmap series diverges";
    }
  }
}

TEST(TileEquivalence, PlainDesignBitIdenticalAcrossGridsAndThreads) {
  expectTileEquivalence(plainSpec());
}

TEST(TileEquivalence, MacroHeavyDesignBitIdenticalAcrossGridsAndThreads) {
  expectTileEquivalence(macroSpec());
}

TEST(TileEquivalence, MixedHeightDesignBitIdenticalAcrossGridsAndThreads) {
  expectTileEquivalence(multiRowSpec());
}

// Halo width is a pure locality knob: zero halo (everything near a
// boundary runs on the global path) and an oversized halo (everything
// is tile-local) both reproduce the reference bit-for-bit.
TEST(TileEquivalence, HaloWidthIsValueExact) {
  const bmgen::BenchmarkSpec spec = plainSpec();
  const FlowResult reference = runTiledFlow(spec, 1, 1, 1);
  for (const int halo : {0, 64}) {
    SCOPED_TRACE("halo " + std::to_string(halo));
    const FlowResult tiled = runTiledFlow(spec, 2, 2, 8, halo);
    EXPECT_EQ(tiled.state, reference.state);
    EXPECT_EQ(tiled.report, reference.report);
    EXPECT_EQ(tiled.heatmaps, reference.heatmaps);
  }
}

}  // namespace
}  // namespace crp
