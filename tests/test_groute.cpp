// Tests for the global router stack: route geometry, routing graph
// capacity/demand/cost bookkeeping (Eq. 9/10), pattern routing, maze
// routing, and the full GlobalRouter driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "groute/global_router.hpp"
#include "groute/maze_route.hpp"
#include "groute/pattern_route.hpp"
#include "groute/route.hpp"
#include "groute/routing_graph.hpp"
#include "test_helpers.hpp"

namespace crp::groute {
namespace {

// ---- route geometry -----------------------------------------------------------

TEST(Route, NormalizedOrdersEndpoints) {
  const RouteSegment seg{GPoint{2, 5, 5}, GPoint{0, 5, 5}};
  const RouteSegment norm = normalized(seg);
  EXPECT_EQ(norm.a.layer, 0);
  EXPECT_EQ(norm.b.layer, 2);
}

TEST(Route, HopCounts) {
  NetRoute route;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 3, 0}});
  route.segments.push_back({GPoint{0, 3, 0}, GPoint{2, 3, 0}});
  route.segments.push_back({GPoint{1, 3, 0}, GPoint{1, 3, 4}});
  EXPECT_EQ(routeWireHops(route), 7);
  EXPECT_EQ(routeViaHops(route), 2);
}

TEST(Route, ConnectivityPositive) {
  NetRoute route;
  route.routed = true;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 3, 0}});
  route.segments.push_back({GPoint{0, 3, 0}, GPoint{1, 3, 0}});
  route.segments.push_back({GPoint{1, 3, 0}, GPoint{1, 3, 2}});
  EXPECT_TRUE(routeConnectsTerminals(
      route, {GPoint{0, 0, 0}, GPoint{0, 3, 2}}));
}

TEST(Route, ConnectivityDetectsOpen) {
  NetRoute route;
  route.routed = true;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 3, 0}});
  // Terminal at (5, 5) is never touched.
  EXPECT_FALSE(routeConnectsTerminals(
      route, {GPoint{0, 0, 0}, GPoint{0, 5, 5}}));
}

TEST(Route, ConnectivityDetectsDisconnectedPieces) {
  NetRoute route;
  route.routed = true;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 2, 0}});
  route.segments.push_back({GPoint{0, 4, 0}, GPoint{0, 6, 0}});
  EXPECT_FALSE(routeConnectsTerminals(
      route, {GPoint{0, 0, 0}, GPoint{0, 6, 0}}));
}

// ---- RoutingGraph -----------------------------------------------------------

class RoutingGraphTest : public ::testing::Test {
 protected:
  RoutingGraphTest() : db_(crp::testing::makeTinyDatabase()), graph_(db_) {}
  db::Database db_;
  RoutingGraph graph_;
};

TEST_F(RoutingGraphTest, DimensionsMatchDesign) {
  EXPECT_EQ(graph_.numLayers(), 4);
  EXPECT_EQ(graph_.grid().countX(), 10);
  EXPECT_EQ(graph_.grid().countY(), 5);
  EXPECT_EQ(graph_.layerDir(0), db::LayerDir::kHorizontal);
  EXPECT_EQ(graph_.layerDir(1), db::LayerDir::kVertical);
}

TEST_F(RoutingGraphTest, CapacityFromTracks) {
  // Tiny db: die 1000x500, gcell 100x100, pitch 20 -> 5 tracks per
  // gcell span on every layer.
  EXPECT_DOUBLE_EQ(graph_.capacity(WireEdge{0, 0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(graph_.capacity(WireEdge{1, 0, 0}), 5.0);
  EXPECT_GE(graph_.viaCapacity(ViaEdge{0, 3, 3}), 1.0);
}

TEST_F(RoutingGraphTest, ValidityChecks) {
  EXPECT_TRUE(graph_.validWireEdge(WireEdge{0, 8, 4}));
  EXPECT_FALSE(graph_.validWireEdge(WireEdge{0, 9, 0}));  // H: x < countX-1
  EXPECT_TRUE(graph_.validWireEdge(WireEdge{1, 9, 3}));
  EXPECT_FALSE(graph_.validWireEdge(WireEdge{1, 0, 4}));  // V: y < countY-1
  EXPECT_FALSE(graph_.validWireEdge(WireEdge{7, 0, 0}));
  EXPECT_TRUE(graph_.validNode(GPoint{3, 9, 4}));
  EXPECT_FALSE(graph_.validNode(GPoint{4, 0, 0}));
}

TEST_F(RoutingGraphTest, ApplyRouteUpdatesDemandAndStats) {
  NetRoute route;
  route.net = 0;
  route.routed = true;
  route.segments.push_back({GPoint{0, 1, 0}, GPoint{0, 4, 0}});
  route.segments.push_back({GPoint{0, 4, 0}, GPoint{1, 4, 0}});
  route.segments.push_back({GPoint{1, 4, 0}, GPoint{1, 4, 2}});

  graph_.applyRoute(route, +1);
  EXPECT_DOUBLE_EQ(graph_.wireUsage(WireEdge{0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(graph_.wireUsage(WireEdge{0, 3, 0}), 1.0);
  EXPECT_DOUBLE_EQ(graph_.wireUsage(WireEdge{1, 4, 1}), 1.0);
  EXPECT_DOUBLE_EQ(graph_.viaUsage(ViaEdge{0, 4, 0}), 1.0);
  EXPECT_EQ(graph_.viaCount(GPoint{0, 4, 0}), 1);
  EXPECT_EQ(graph_.viaCount(GPoint{1, 4, 0}), 1);
  EXPECT_EQ(graph_.totalVias(), 1);
  EXPECT_EQ(graph_.totalWireDbu(), 3 * 100 + 2 * 100);

  graph_.applyRoute(route, -1);
  EXPECT_DOUBLE_EQ(graph_.wireUsage(WireEdge{0, 1, 0}), 0.0);
  EXPECT_EQ(graph_.totalVias(), 0);
  EXPECT_EQ(graph_.totalWireDbu(), 0);
  EXPECT_EQ(graph_.viaCount(GPoint{0, 4, 0}), 0);
}

TEST_F(RoutingGraphTest, DemandIncludesViaEstimate) {
  // Eq. 9: with one via at each endpoint of an edge, D_e gains
  // beta * sqrt((1+1)/2) = 1.5.
  NetRoute route;
  route.segments.push_back({GPoint{0, 2, 2}, GPoint{1, 2, 2}});
  graph_.applyRoute(route, +1);
  NetRoute route2;
  route2.segments.push_back({GPoint{0, 3, 2}, GPoint{1, 3, 2}});
  graph_.applyRoute(route2, +1);
  const double demand = graph_.demand(WireEdge{0, 2, 2});
  EXPECT_NEAR(demand, 1.5 * std::sqrt(1.0), 1e-9);
}

TEST_F(RoutingGraphTest, LogisticPenaltyAtCapacityIsHalf) {
  // Saturate an edge to exactly its capacity and check the cost is
  // Unit * Dist * 1.5 (penalty 0.5 at D == C).
  const WireEdge e{2, 4, 2};
  const double cap = graph_.capacity(e);
  NetRoute route;
  route.segments.push_back({GPoint{2, 4, 2}, GPoint{2, 5, 2}});
  for (int i = 0; i < static_cast<int>(cap); ++i) {
    graph_.applyRoute(route, +1);
  }
  const double dist = static_cast<double>(graph_.wireEdgeDist(e)) /
                      static_cast<double>(graph_.pitchUnit());
  EXPECT_NEAR(graph_.wireEdgeCost(e), 0.5 * dist * 1.5, 1e-9);
}

TEST_F(RoutingGraphTest, CostIncreasesWithCongestion) {
  const WireEdge e{0, 5, 2};
  const double before = graph_.wireEdgeCost(e);
  NetRoute route;
  route.segments.push_back({GPoint{0, 5, 2}, GPoint{0, 6, 2}});
  for (int i = 0; i < 25; ++i) graph_.applyRoute(route, +1);
  const double after = graph_.wireEdgeCost(e);
  EXPECT_GT(after, before);
  // Far above capacity the penalty saturates at 1 -> cost = 2x base.
  const double distUnits = static_cast<double>(graph_.wireEdgeDist(e)) /
                           static_cast<double>(graph_.pitchUnit());
  EXPECT_NEAR(after, 2.0 * 0.5 * distUnits, 1e-4);
}

TEST_F(RoutingGraphTest, CongestionPenaltyCanBeDisabled) {
  CostConfig config;
  config.congestionPenalty = false;
  graph_.setConfig(config);
  const WireEdge e{0, 5, 2};
  NetRoute route;
  route.segments.push_back({GPoint{0, 5, 2}, GPoint{0, 6, 2}});
  for (int i = 0; i < 20; ++i) graph_.applyRoute(route, +1);
  EXPECT_DOUBLE_EQ(graph_.wireEdgeCost(e),
                   0.5 * static_cast<double>(graph_.wireEdgeDist(e)) /
                       static_cast<double>(graph_.pitchUnit()));
}

TEST_F(RoutingGraphTest, OverflowAndStats) {
  const WireEdge e{0, 0, 0};
  const double cap = graph_.capacity(e);
  NetRoute route;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 1, 0}});
  for (int i = 0; i < static_cast<int>(cap) + 3; ++i) {
    graph_.applyRoute(route, +1);
  }
  EXPECT_NEAR(graph_.overflow(e), 3.0, 1e-9);
  const auto stats = graph_.congestionStats();
  EXPECT_EQ(stats.overflowedEdges, 1);
  EXPECT_NEAR(stats.totalOverflow, 3.0, 1e-9);
  EXPECT_NEAR(stats.maxOverflow, 3.0, 1e-9);
  EXPECT_GT(stats.totalEdges, 100);
}

TEST_F(RoutingGraphTest, BlockagesChargeFixedUsage) {
  auto db = crp::testing::makeTinyDatabase();
  // Blockage covering gcell (0,0) fully on layer 0.
  db.mutableDesign().blockages.push_back(
      db::Blockage{0, geom::Rect{0, 0, 100, 100}});
  RoutingGraph blocked(db);
  EXPECT_GT(blocked.fixedUsage(WireEdge{0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(blocked.fixedUsage(WireEdge{0, 5, 3}), 0.0);
}

// ---- PatternRouter -----------------------------------------------------------

class PatternRouteTest : public ::testing::Test {
 protected:
  PatternRouteTest()
      : db_(crp::testing::makeTinyDatabase()), graph_(db_),
        router_(graph_) {}
  db::Database db_;
  RoutingGraph graph_;
  PatternRouter router_;
};

TEST_F(PatternRouteTest, SameColumnIsViaStack) {
  const auto result = router_.routeTwoPin(GPoint{0, 3, 3}, GPoint{2, 3, 3});
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.segments.size(), 1u);
  EXPECT_TRUE(result.segments[0].isVia());
  EXPECT_NEAR(result.cost, 2 * 2.0 * 1.0, 1.0);  // 2 via edges, low congestion
}

TEST_F(PatternRouteTest, AlignedRouteUsesMatchingLayer) {
  const auto result = router_.routeTwoPin(GPoint{0, 1, 2}, GPoint{0, 6, 2});
  ASSERT_TRUE(result.ok);
  // All wire segments must run horizontally on horizontal layers.
  int wires = 0;
  for (const auto& seg : result.segments) {
    if (!seg.isVia()) {
      ++wires;
      EXPECT_EQ(graph_.layerDir(seg.a.layer), db::LayerDir::kHorizontal);
      EXPECT_EQ(seg.a.y, seg.b.y);
    }
  }
  EXPECT_GE(wires, 1);
}

TEST_F(PatternRouteTest, LShapeConnectsAndIsConnected) {
  const auto result = router_.routeTwoPin(GPoint{0, 1, 1}, GPoint{0, 7, 4});
  ASSERT_TRUE(result.ok);
  NetRoute route;
  route.routed = true;
  route.segments = result.segments;
  EXPECT_TRUE(routeConnectsTerminals(
      route, {GPoint{0, 1, 1}, GPoint{0, 7, 4}}));
  EXPECT_TRUE(graph_.routeInBounds(route));
}

TEST_F(PatternRouteTest, CostMatchesIndependentPricing) {
  // The result cost must equal re-pricing the emitted segments on the
  // same (uncommitted) graph.
  const auto result = router_.routeTwoPin(GPoint{0, 0, 0}, GPoint{0, 8, 4});
  ASSERT_TRUE(result.ok);
  double priced = 0.0;
  for (const auto& rawSeg : result.segments) {
    const auto seg = normalized(rawSeg);
    if (seg.isVia()) {
      for (int l = seg.a.layer; l < seg.b.layer; ++l) {
        priced += graph_.viaEdgeCost(ViaEdge{l, seg.a.x, seg.a.y});
      }
    } else if (seg.a.x != seg.b.x) {
      for (int x = seg.a.x; x < seg.b.x; ++x) {
        priced += graph_.wireEdgeCost(WireEdge{seg.a.layer, x, seg.a.y});
      }
    } else {
      for (int y = seg.a.y; y < seg.b.y; ++y) {
        priced += graph_.wireEdgeCost(WireEdge{seg.a.layer, seg.a.x, y});
      }
    }
  }
  EXPECT_NEAR(result.cost, priced, 1e-9);
}

TEST_F(PatternRouteTest, AvoidsCongestedCorridor) {
  // Saturate the straight corridor on ALL horizontal layers at row 2;
  // a Z/L detour must win.
  for (int layer = 0; layer < 4; layer += 2) {
    for (int x = 2; x < 6; ++x) {
      NetRoute jam;
      jam.segments.push_back(
          {GPoint{layer, x, 2}, GPoint{layer, x + 1, 2}});
      for (int i = 0; i < 12; ++i) graph_.applyRoute(jam, +1);
    }
  }
  const auto result = router_.routeTwoPin(GPoint{0, 1, 2}, GPoint{0, 7, 2});
  ASSERT_TRUE(result.ok);
  // The straight path would cost >= 6 edges * (0.5*100*2) = 600 on the
  // saturated rows; the detour must be cheaper than that.
  EXPECT_LT(result.cost, 600.0);
}

TEST_F(PatternRouteTest, TreeRouteCoversAllTerminals) {
  const std::vector<GPoint> terminals{
      GPoint{0, 1, 1}, GPoint{0, 8, 1}, GPoint{0, 4, 4}, GPoint{0, 8, 4}};
  const auto result = router_.routeTree(terminals);
  ASSERT_TRUE(result.ok);
  NetRoute route;
  route.routed = true;
  route.segments = result.segments;
  EXPECT_TRUE(routeConnectsTerminals(route, terminals));
  EXPECT_TRUE(graph_.routeInBounds(route));
}

TEST_F(PatternRouteTest, PriceTreeMatchesRouteTreeCost) {
  const std::vector<GPoint> terminals{GPoint{0, 0, 0}, GPoint{0, 9, 4},
                                      GPoint{0, 5, 2}};
  EXPECT_NEAR(router_.priceTree(terminals),
              router_.routeTree(terminals).cost, 1e-9);
}

// ---- MazeRouter -----------------------------------------------------------

class MazeRouteTest : public ::testing::Test {
 protected:
  MazeRouteTest()
      : db_(crp::testing::makeTinyDatabase()), graph_(db_), maze_(graph_) {}
  db::Database db_;
  RoutingGraph graph_;
  MazeRouter maze_;
};

TEST_F(MazeRouteTest, FindsStraightRoute) {
  const std::vector<GPoint> terminals{GPoint{0, 1, 2}, GPoint{0, 6, 2}};
  const auto result = maze_.routeTree(terminals);
  ASSERT_TRUE(result.ok);
  NetRoute route;
  route.routed = true;
  route.segments = result.segments;
  EXPECT_TRUE(routeConnectsTerminals(route, terminals));
  EXPECT_TRUE(graph_.routeInBounds(route));
}

TEST_F(MazeRouteTest, MultiTerminalTreeIsConnected) {
  const std::vector<GPoint> terminals{
      GPoint{0, 0, 0}, GPoint{0, 9, 0}, GPoint{0, 0, 4}, GPoint{0, 9, 4},
      GPoint{0, 5, 2}};
  const auto result = maze_.routeTree(terminals);
  ASSERT_TRUE(result.ok);
  NetRoute route;
  route.routed = true;
  route.segments = result.segments;
  EXPECT_TRUE(routeConnectsTerminals(route, terminals));
}

TEST_F(MazeRouteTest, MazeNeverBeatenByItselfAfterDetour) {
  // Maze route must be at least as cheap as the pattern route on the
  // same graph state (it searches a superset of the pattern paths,
  // modulo box clipping).
  PatternRouter pattern(graph_);
  const std::vector<GPoint> terminals{GPoint{0, 1, 1}, GPoint{0, 8, 3}};
  const auto mazeResult = maze_.routeTree(terminals);
  const auto patternResult = pattern.routeTree(terminals);
  ASSERT_TRUE(mazeResult.ok);
  ASSERT_TRUE(patternResult.ok);
  EXPECT_LE(mazeResult.cost, patternResult.cost + 1e-6);
}

TEST_F(MazeRouteTest, SingleTerminalTrivial) {
  const auto result = maze_.routeTree({GPoint{0, 3, 3}});
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.segments.empty());
}

// ---- GlobalRouter -----------------------------------------------------------

TEST(GlobalRouter, RoutesTinyDesignWithNoOpens) {
  const auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  const auto stats = router.run();
  EXPECT_EQ(stats.openNets, 0);
  EXPECT_GT(stats.wirelengthDbu, 0);
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    const auto terminals = router.netTerminals(n);
    if (terminals.size() < 2) continue;
    EXPECT_TRUE(router.route(n).routed);
  }
  // Per-net validity (geometry, connectivity, terminal coverage) plus
  // demand exactness against the committed routes.
  check::AuditReport report;
  const check::DbAuditor auditor(db, &router);
  auditor.auditRoutes(report);
  auditor.auditDemand(report);
  EXPECT_CLEAN_AUDIT(report);
}

TEST(GlobalRouter, RoutesGridDesign) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  GlobalRouter router(db);
  const auto stats = router.run();
  EXPECT_EQ(stats.openNets, 0);
  // Every multi-terminal net connected, every route geometry-legal.
  check::AuditReport report;
  check::DbAuditor(db, &router).auditRoutes(report);
  EXPECT_CLEAN_AUDIT(report);
}

TEST(GlobalRouter, RipUpRemovesDemandExactly) {
  const auto db = crp::testing::makeGridDatabase(8, 4);
  GlobalRouter router(db);
  router.run();
  const auto wireBefore = router.graph().totalWireDbu();
  const auto viasBefore = router.graph().totalVias();
  // Rip up and restore every net; totals must return exactly.  After
  // the rip-up, the graph must diff clean against an empty route set
  // (not just the totals — every per-edge and per-node counter).
  for (db::NetId n = 0; n < db.numNets(); ++n) router.ripUp(n);
  check::AuditReport ripped;
  check::auditDemandAgainstRoutes(db, router.graph(), {}, ripped);
  EXPECT_CLEAN_AUDIT(ripped);
  for (db::NetId n = 0; n < db.numNets(); ++n) router.rerouteNet(n);
  EXPECT_GT(router.graph().totalWireDbu(), 0);
  // Not necessarily equal (order effects), but same magnitude.
  EXPECT_NEAR(static_cast<double>(router.graph().totalWireDbu()),
              static_cast<double>(wireBefore), 0.5 * wireBefore);
  (void)viasBefore;
}

TEST(GlobalRouter, NetCostPositiveForRoutedNets) {
  const auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  router.run();
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    if (router.route(n).routed && !router.route(n).segments.empty()) {
      EXPECT_GT(router.netRouteCost(n), 0.0);
    }
  }
}

TEST(GlobalRouter, GuidesCoverEveryRoutedNetAndItsPins) {
  const auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  router.run();
  const auto guides = router.buildGuides();
  ASSERT_EQ(guides.size(), static_cast<std::size_t>(db.numNets()));
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    EXPECT_EQ(guides[n].net, db.net(n).name);
    for (const db::NetPin& pin : db.net(n).pins) {
      const auto pos = db.pinPosition(pin);
      bool covered = false;
      for (const auto& rect : guides[n].rects) {
        if (rect.rect.containsClosed(pos)) covered = true;
      }
      EXPECT_TRUE(covered) << "pin of " << db.net(n).name << " not covered";
    }
  }
}

TEST(GlobalRouter, RerouteAfterCellMoveTracksNewPosition) {
  auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  router.run();
  const auto before = router.netTerminals(0);
  db.moveCell(0, geom::Point{900, 400});
  router.rerouteNet(0);
  router.rerouteNet(2);  // other net of c0
  const auto after = router.netTerminals(0);
  EXPECT_NE(before, after);
  EXPECT_TRUE(routeConnectsTerminals(router.route(0), after));
}

TEST(GlobalRouter, DeterministicAcrossRuns) {
  const auto db = crp::testing::makeGridDatabase(10, 5);
  groute::GlobalRouter a(db);
  groute::GlobalRouter b(db);
  const auto sa = a.run();
  const auto sb = b.run();
  EXPECT_EQ(sa.wirelengthDbu, sb.wirelengthDbu);
  EXPECT_EQ(sa.vias, sb.vias);
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    EXPECT_EQ(a.route(n).segments, b.route(n).segments) << db.net(n).name;
  }
}

TEST(GlobalRouter, TerminalsDeduplicated) {
  const auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    auto terminals = router.netTerminals(n);
    auto sorted = terminals;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
    EXPECT_EQ(terminals, sorted);  // returned sorted
  }
}

TEST(PatternRouteLayers, CongestionPushesRoutesUpward) {
  // Saturate layer 0 along a row; the router must prefer layer 2 (the
  // other horizontal layer) for a straight connection on that row.
  const auto db = crp::testing::makeTinyDatabase();
  RoutingGraph graph(db);
  for (int x = 0; x < 9; ++x) {
    NetRoute jam;
    jam.segments.push_back({GPoint{0, x, 1}, GPoint{0, x + 1, 1}});
    for (int i = 0; i < 15; ++i) graph.applyRoute(jam, +1);
  }
  PatternRouter router(graph);
  const auto result = router.routeTwoPin(GPoint{0, 0, 1}, GPoint{0, 9, 1});
  ASSERT_TRUE(result.ok);
  bool usedUpperLayer = false;
  for (const auto& seg : result.segments) {
    if (!seg.isVia() && seg.a.layer >= 2) usedUpperLayer = true;
    if (!seg.isVia() && seg.a.layer == 0) {
      // Any layer-0 run must be short (access stubs), not the trunk.
      EXPECT_LE(std::abs(seg.a.x - seg.b.x), 2);
    }
  }
  EXPECT_TRUE(usedUpperLayer);
}

TEST(RoutingGraphTest2, RouteInBoundsRejectsWrongDirection) {
  const auto db = crp::testing::makeTinyDatabase();
  RoutingGraph graph(db);
  NetRoute bad;
  bad.segments.push_back({GPoint{0, 2, 0}, GPoint{0, 2, 3}});  // V on H layer
  EXPECT_FALSE(graph.routeInBounds(bad));
  NetRoute diagonal;
  diagonal.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 3, 3}});
  EXPECT_FALSE(graph.routeInBounds(diagonal));
  NetRoute viaMoved;
  viaMoved.segments.push_back({GPoint{0, 0, 0}, GPoint{1, 1, 0}});
  EXPECT_FALSE(graph.routeInBounds(viaMoved));
}

// ---- parallel batch reroute -------------------------------------------------

// Independent re-statement of the conflict-rect contract (route extent
// + terminal bbox, expanded by mazeMargin plus one halo gcell) so the
// batch-plan test pins the contract instead of checking the
// implementation against itself.
struct ConflictBox {
  int xlo = 1 << 30, ylo = 1 << 30, xhi = -1, yhi = -1;
  bool overlaps(const ConflictBox& o) const {
    if (xhi < xlo || o.xhi < o.xlo) return false;  // empty never clashes
    return xlo <= o.xhi && o.xlo <= xhi && ylo <= o.yhi && o.ylo <= yhi;
  }
};

ConflictBox conflictBox(const GlobalRouter& router, db::NetId net) {
  ConflictBox box;
  auto cover = [&box](int x, int y) {
    box.xlo = std::min(box.xlo, x);
    box.ylo = std::min(box.ylo, y);
    box.xhi = std::max(box.xhi, x);
    box.yhi = std::max(box.yhi, y);
  };
  for (const GPoint& t : router.netTerminals(net)) cover(t.x, t.y);
  for (const RouteSegment& seg : router.route(net).segments) {
    cover(seg.a.x, seg.a.y);
    cover(seg.b.x, seg.b.y);
  }
  if (box.xhi >= box.xlo) {
    const int margin = router.options().mazeMargin + 1;
    box.xlo = std::max(0, box.xlo - margin);
    box.ylo = std::max(0, box.ylo - margin);
    box.xhi = std::min(router.graph().grid().countX() - 1, box.xhi + margin);
    box.yhi = std::min(router.graph().grid().countY() - 1, box.yhi + margin);
  }
  return box;
}

TEST(ParallelReroute, BatchPlanIsConflictFreeAndCoversInput) {
  const auto db = crp::testing::makeGridDatabase(24, 12);
  GlobalRouterOptions options;
  options.mazeMargin = 1;  // small conflict rects: real multi-net batches
  GlobalRouter router(db, options);
  router.run();

  std::vector<db::NetId> nets(db.numNets());
  std::iota(nets.begin(), nets.end(), 0);
  int conflicts = -1;
  const auto batches = router.planRerouteBatches(nets, &conflicts);
  EXPECT_GE(conflicts, 0);

  // Every input net lands in exactly one batch; no batch is empty.
  std::vector<db::NetId> flat;
  for (const auto& batch : batches) {
    EXPECT_FALSE(batch.empty());
    flat.insert(flat.end(), batch.begin(), batch.end());
  }
  std::sort(flat.begin(), flat.end());
  EXPECT_EQ(flat, nets);

  // Members of one batch have pairwise-disjoint conflict boxes — the
  // property that makes concurrent reroutes value-exact.
  for (const auto& batch : batches) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (std::size_t j = i + 1; j < batch.size(); ++j) {
        EXPECT_FALSE(
            conflictBox(router, batch[i]).overlaps(conflictBox(router,
                                                               batch[j])))
            << "nets " << batch[i] << " and " << batch[j]
            << " share a batch but their conflict boxes overlap";
      }
    }
  }

  // The plan must expose actual parallelism on this design (short
  // chain nets spread over a 12x12 gcell grid).
  EXPECT_LT(batches.size(), nets.size());
}

TEST(ParallelReroute, ThreadCountIsValueExact) {
  struct Result {
    std::vector<std::vector<RouteSegment>> segments;
    geom::Coord wire = 0;
    long vias = 0;
  };
  // Full UD-style scenario: initial route, move a spread of cells,
  // batch-reroute the affected nets, snapshot every route.
  auto runOnce = [](int routerThreads) {
    auto db = crp::testing::makeGridDatabase(24, 12);
    GlobalRouterOptions options;
    options.mazeMargin = 1;  // multi-net batches (see plan test above)
    options.routerThreads = routerThreads;
    GlobalRouter router(db, options);
    router.run();

    std::vector<db::NetId> affected;
    for (db::CellId c = 0; c < db.numCells(); c += 17) {
      geom::Point pos = db.cell(c).pos;
      pos.x = (pos.x + 400) % db.design().dieArea.width();
      db.moveCell(c, pos);
      for (const db::NetId n : db.netsOfCell(c)) affected.push_back(n);
    }
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());

    const RerouteBatchStats stats = router.rerouteNets(affected);
    EXPECT_EQ(stats.nets, static_cast<int>(affected.size()));
    EXPECT_GT(stats.batches, 0);
    EXPECT_EQ(stats.failed, 0);

    Result result;
    result.wire = router.graph().totalWireDbu();
    result.vias = router.graph().totalVias();
    for (db::NetId n = 0; n < db.numNets(); ++n) {
      result.segments.push_back(router.route(n).segments);
    }
    return result;
  };

  const Result serial = runOnce(1);
  const Result parallel = runOnce(8);
  EXPECT_EQ(serial.wire, parallel.wire);
  EXPECT_EQ(serial.vias, parallel.vias);
  ASSERT_EQ(serial.segments.size(), parallel.segments.size());
  for (std::size_t n = 0; n < serial.segments.size(); ++n) {
    EXPECT_EQ(serial.segments[n], parallel.segments[n]) << "net " << n;
  }
}

// ---- reroute failure restore ------------------------------------------------

// A 1-layer database (layer 0 is horizontal in Tech::makeDefault):
// routes cannot change gcell row, so moving a terminal to another row
// makes its net unroutable — both maze and pattern must fail.
db::Database makeSingleLayerDatabase() {
  using namespace crp::db;
  using geom::Point;
  using geom::Rect;

  Tech tech = Tech::makeDefault(/*numLayers=*/1, /*pitch=*/20, /*width=*/6,
                                /*spacing=*/8, /*minArea=*/120,
                                /*siteWidth=*/10, /*rowHeight=*/100);
  Library lib = Library::makeDefault(10, 100, /*pinLayer=*/0);
  const int inv = *lib.findMacro("INV_X1");

  Design design;
  design.name = "flat";
  design.dieArea = Rect{0, 0, 400, 300};
  for (int r = 0; r < 3; ++r) {
    design.rows.push_back(Row{"row" + std::to_string(r), Point{0, 100 * r},
                              40, geom::Orientation::kN});
  }
  design.gcellCountX = 10;
  design.gcellCountY = 3;
  crp::testing::addDefaultTracks(design, tech);

  auto addCell = [&](const std::string& name, Point pos) {
    Component c;
    c.name = name;
    c.macro = inv;
    c.pos = pos;
    design.components.push_back(c);
  };
  addCell("a", Point{20, 0});
  addCell("b", Point{350, 0});

  Net net;
  net.name = "n0";
  net.pins = {NetPin{CompPinRef{0, 1}}, NetPin{CompPinRef{1, 0}}};
  design.nets.push_back(net);

  return Database(std::move(tech), std::move(lib), std::move(design));
}

TEST(GlobalRouter, RerouteDoubleFailureRestoresOldRouteAndDemand) {
  auto db = makeSingleLayerDatabase();
  GlobalRouter router(db);
  const auto stats = router.run();
  ASSERT_EQ(stats.openNets, 0);
  ASSERT_TRUE(router.route(0).routed);
  const auto segmentsBefore = router.route(0).segments;
  const auto wireBefore = router.graph().totalWireDbu();
  const auto viasBefore = router.graph().totalVias();

  // Two rows up: unreachable on a single horizontal layer.
  db.moveCell(1, geom::Point{350, 200});
  EXPECT_FALSE(router.rerouteNet(0));

  // The old route and its demand are fully restored — no demand
  // vanishes even though the reroute failed.
  EXPECT_TRUE(router.route(0).routed);
  EXPECT_EQ(router.route(0).segments, segmentsBefore);
  EXPECT_EQ(router.graph().totalWireDbu(), wireBefore);
  EXPECT_EQ(router.graph().totalVias(), viasBefore);
}

}  // namespace
}  // namespace crp::groute\n
