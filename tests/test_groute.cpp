// Tests for the global router stack: route geometry, routing graph
// capacity/demand/cost bookkeeping (Eq. 9/10), pattern routing, maze
// routing, and the full GlobalRouter driver.
#include <gtest/gtest.h>

#include <cmath>

#include "groute/global_router.hpp"
#include "groute/maze_route.hpp"
#include "groute/pattern_route.hpp"
#include "groute/route.hpp"
#include "groute/routing_graph.hpp"
#include "test_helpers.hpp"

namespace crp::groute {
namespace {

// ---- route geometry -----------------------------------------------------------

TEST(Route, NormalizedOrdersEndpoints) {
  const RouteSegment seg{GPoint{2, 5, 5}, GPoint{0, 5, 5}};
  const RouteSegment norm = normalized(seg);
  EXPECT_EQ(norm.a.layer, 0);
  EXPECT_EQ(norm.b.layer, 2);
}

TEST(Route, HopCounts) {
  NetRoute route;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 3, 0}});
  route.segments.push_back({GPoint{0, 3, 0}, GPoint{2, 3, 0}});
  route.segments.push_back({GPoint{1, 3, 0}, GPoint{1, 3, 4}});
  EXPECT_EQ(routeWireHops(route), 7);
  EXPECT_EQ(routeViaHops(route), 2);
}

TEST(Route, ConnectivityPositive) {
  NetRoute route;
  route.routed = true;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 3, 0}});
  route.segments.push_back({GPoint{0, 3, 0}, GPoint{1, 3, 0}});
  route.segments.push_back({GPoint{1, 3, 0}, GPoint{1, 3, 2}});
  EXPECT_TRUE(routeConnectsTerminals(
      route, {GPoint{0, 0, 0}, GPoint{0, 3, 2}}));
}

TEST(Route, ConnectivityDetectsOpen) {
  NetRoute route;
  route.routed = true;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 3, 0}});
  // Terminal at (5, 5) is never touched.
  EXPECT_FALSE(routeConnectsTerminals(
      route, {GPoint{0, 0, 0}, GPoint{0, 5, 5}}));
}

TEST(Route, ConnectivityDetectsDisconnectedPieces) {
  NetRoute route;
  route.routed = true;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 2, 0}});
  route.segments.push_back({GPoint{0, 4, 0}, GPoint{0, 6, 0}});
  EXPECT_FALSE(routeConnectsTerminals(
      route, {GPoint{0, 0, 0}, GPoint{0, 6, 0}}));
}

// ---- RoutingGraph -----------------------------------------------------------

class RoutingGraphTest : public ::testing::Test {
 protected:
  RoutingGraphTest() : db_(crp::testing::makeTinyDatabase()), graph_(db_) {}
  db::Database db_;
  RoutingGraph graph_;
};

TEST_F(RoutingGraphTest, DimensionsMatchDesign) {
  EXPECT_EQ(graph_.numLayers(), 4);
  EXPECT_EQ(graph_.grid().countX(), 10);
  EXPECT_EQ(graph_.grid().countY(), 5);
  EXPECT_EQ(graph_.layerDir(0), db::LayerDir::kHorizontal);
  EXPECT_EQ(graph_.layerDir(1), db::LayerDir::kVertical);
}

TEST_F(RoutingGraphTest, CapacityFromTracks) {
  // Tiny db: die 1000x500, gcell 100x100, pitch 20 -> 5 tracks per
  // gcell span on every layer.
  EXPECT_DOUBLE_EQ(graph_.capacity(WireEdge{0, 0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(graph_.capacity(WireEdge{1, 0, 0}), 5.0);
  EXPECT_GE(graph_.viaCapacity(ViaEdge{0, 3, 3}), 1.0);
}

TEST_F(RoutingGraphTest, ValidityChecks) {
  EXPECT_TRUE(graph_.validWireEdge(WireEdge{0, 8, 4}));
  EXPECT_FALSE(graph_.validWireEdge(WireEdge{0, 9, 0}));  // H: x < countX-1
  EXPECT_TRUE(graph_.validWireEdge(WireEdge{1, 9, 3}));
  EXPECT_FALSE(graph_.validWireEdge(WireEdge{1, 0, 4}));  // V: y < countY-1
  EXPECT_FALSE(graph_.validWireEdge(WireEdge{7, 0, 0}));
  EXPECT_TRUE(graph_.validNode(GPoint{3, 9, 4}));
  EXPECT_FALSE(graph_.validNode(GPoint{4, 0, 0}));
}

TEST_F(RoutingGraphTest, ApplyRouteUpdatesDemandAndStats) {
  NetRoute route;
  route.net = 0;
  route.routed = true;
  route.segments.push_back({GPoint{0, 1, 0}, GPoint{0, 4, 0}});
  route.segments.push_back({GPoint{0, 4, 0}, GPoint{1, 4, 0}});
  route.segments.push_back({GPoint{1, 4, 0}, GPoint{1, 4, 2}});

  graph_.applyRoute(route, +1);
  EXPECT_DOUBLE_EQ(graph_.wireUsage(WireEdge{0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(graph_.wireUsage(WireEdge{0, 3, 0}), 1.0);
  EXPECT_DOUBLE_EQ(graph_.wireUsage(WireEdge{1, 4, 1}), 1.0);
  EXPECT_DOUBLE_EQ(graph_.viaUsage(ViaEdge{0, 4, 0}), 1.0);
  EXPECT_EQ(graph_.viaCount(GPoint{0, 4, 0}), 1);
  EXPECT_EQ(graph_.viaCount(GPoint{1, 4, 0}), 1);
  EXPECT_EQ(graph_.totalVias(), 1);
  EXPECT_EQ(graph_.totalWireDbu(), 3 * 100 + 2 * 100);

  graph_.applyRoute(route, -1);
  EXPECT_DOUBLE_EQ(graph_.wireUsage(WireEdge{0, 1, 0}), 0.0);
  EXPECT_EQ(graph_.totalVias(), 0);
  EXPECT_EQ(graph_.totalWireDbu(), 0);
  EXPECT_EQ(graph_.viaCount(GPoint{0, 4, 0}), 0);
}

TEST_F(RoutingGraphTest, DemandIncludesViaEstimate) {
  // Eq. 9: with one via at each endpoint of an edge, D_e gains
  // beta * sqrt((1+1)/2) = 1.5.
  NetRoute route;
  route.segments.push_back({GPoint{0, 2, 2}, GPoint{1, 2, 2}});
  graph_.applyRoute(route, +1);
  NetRoute route2;
  route2.segments.push_back({GPoint{0, 3, 2}, GPoint{1, 3, 2}});
  graph_.applyRoute(route2, +1);
  const double demand = graph_.demand(WireEdge{0, 2, 2});
  EXPECT_NEAR(demand, 1.5 * std::sqrt(1.0), 1e-9);
}

TEST_F(RoutingGraphTest, LogisticPenaltyAtCapacityIsHalf) {
  // Saturate an edge to exactly its capacity and check the cost is
  // Unit * Dist * 1.5 (penalty 0.5 at D == C).
  const WireEdge e{2, 4, 2};
  const double cap = graph_.capacity(e);
  NetRoute route;
  route.segments.push_back({GPoint{2, 4, 2}, GPoint{2, 5, 2}});
  for (int i = 0; i < static_cast<int>(cap); ++i) {
    graph_.applyRoute(route, +1);
  }
  const double dist = static_cast<double>(graph_.wireEdgeDist(e)) /
                      static_cast<double>(graph_.pitchUnit());
  EXPECT_NEAR(graph_.wireEdgeCost(e), 0.5 * dist * 1.5, 1e-9);
}

TEST_F(RoutingGraphTest, CostIncreasesWithCongestion) {
  const WireEdge e{0, 5, 2};
  const double before = graph_.wireEdgeCost(e);
  NetRoute route;
  route.segments.push_back({GPoint{0, 5, 2}, GPoint{0, 6, 2}});
  for (int i = 0; i < 25; ++i) graph_.applyRoute(route, +1);
  const double after = graph_.wireEdgeCost(e);
  EXPECT_GT(after, before);
  // Far above capacity the penalty saturates at 1 -> cost = 2x base.
  const double distUnits = static_cast<double>(graph_.wireEdgeDist(e)) /
                           static_cast<double>(graph_.pitchUnit());
  EXPECT_NEAR(after, 2.0 * 0.5 * distUnits, 1e-4);
}

TEST_F(RoutingGraphTest, CongestionPenaltyCanBeDisabled) {
  CostConfig config;
  config.congestionPenalty = false;
  graph_.setConfig(config);
  const WireEdge e{0, 5, 2};
  NetRoute route;
  route.segments.push_back({GPoint{0, 5, 2}, GPoint{0, 6, 2}});
  for (int i = 0; i < 20; ++i) graph_.applyRoute(route, +1);
  EXPECT_DOUBLE_EQ(graph_.wireEdgeCost(e),
                   0.5 * static_cast<double>(graph_.wireEdgeDist(e)) /
                       static_cast<double>(graph_.pitchUnit()));
}

TEST_F(RoutingGraphTest, OverflowAndStats) {
  const WireEdge e{0, 0, 0};
  const double cap = graph_.capacity(e);
  NetRoute route;
  route.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 1, 0}});
  for (int i = 0; i < static_cast<int>(cap) + 3; ++i) {
    graph_.applyRoute(route, +1);
  }
  EXPECT_NEAR(graph_.overflow(e), 3.0, 1e-9);
  const auto stats = graph_.congestionStats();
  EXPECT_EQ(stats.overflowedEdges, 1);
  EXPECT_NEAR(stats.totalOverflow, 3.0, 1e-9);
  EXPECT_NEAR(stats.maxOverflow, 3.0, 1e-9);
  EXPECT_GT(stats.totalEdges, 100);
}

TEST_F(RoutingGraphTest, BlockagesChargeFixedUsage) {
  auto db = crp::testing::makeTinyDatabase();
  // Blockage covering gcell (0,0) fully on layer 0.
  db.mutableDesign().blockages.push_back(
      db::Blockage{0, geom::Rect{0, 0, 100, 100}});
  RoutingGraph blocked(db);
  EXPECT_GT(blocked.fixedUsage(WireEdge{0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(blocked.fixedUsage(WireEdge{0, 5, 3}), 0.0);
}

// ---- PatternRouter -----------------------------------------------------------

class PatternRouteTest : public ::testing::Test {
 protected:
  PatternRouteTest()
      : db_(crp::testing::makeTinyDatabase()), graph_(db_),
        router_(graph_) {}
  db::Database db_;
  RoutingGraph graph_;
  PatternRouter router_;
};

TEST_F(PatternRouteTest, SameColumnIsViaStack) {
  const auto result = router_.routeTwoPin(GPoint{0, 3, 3}, GPoint{2, 3, 3});
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.segments.size(), 1u);
  EXPECT_TRUE(result.segments[0].isVia());
  EXPECT_NEAR(result.cost, 2 * 2.0 * 1.0, 1.0);  // 2 via edges, low congestion
}

TEST_F(PatternRouteTest, AlignedRouteUsesMatchingLayer) {
  const auto result = router_.routeTwoPin(GPoint{0, 1, 2}, GPoint{0, 6, 2});
  ASSERT_TRUE(result.ok);
  // All wire segments must run horizontally on horizontal layers.
  int wires = 0;
  for (const auto& seg : result.segments) {
    if (!seg.isVia()) {
      ++wires;
      EXPECT_EQ(graph_.layerDir(seg.a.layer), db::LayerDir::kHorizontal);
      EXPECT_EQ(seg.a.y, seg.b.y);
    }
  }
  EXPECT_GE(wires, 1);
}

TEST_F(PatternRouteTest, LShapeConnectsAndIsConnected) {
  const auto result = router_.routeTwoPin(GPoint{0, 1, 1}, GPoint{0, 7, 4});
  ASSERT_TRUE(result.ok);
  NetRoute route;
  route.routed = true;
  route.segments = result.segments;
  EXPECT_TRUE(routeConnectsTerminals(
      route, {GPoint{0, 1, 1}, GPoint{0, 7, 4}}));
  EXPECT_TRUE(graph_.routeInBounds(route));
}

TEST_F(PatternRouteTest, CostMatchesIndependentPricing) {
  // The result cost must equal re-pricing the emitted segments on the
  // same (uncommitted) graph.
  const auto result = router_.routeTwoPin(GPoint{0, 0, 0}, GPoint{0, 8, 4});
  ASSERT_TRUE(result.ok);
  double priced = 0.0;
  for (const auto& rawSeg : result.segments) {
    const auto seg = normalized(rawSeg);
    if (seg.isVia()) {
      for (int l = seg.a.layer; l < seg.b.layer; ++l) {
        priced += graph_.viaEdgeCost(ViaEdge{l, seg.a.x, seg.a.y});
      }
    } else if (seg.a.x != seg.b.x) {
      for (int x = seg.a.x; x < seg.b.x; ++x) {
        priced += graph_.wireEdgeCost(WireEdge{seg.a.layer, x, seg.a.y});
      }
    } else {
      for (int y = seg.a.y; y < seg.b.y; ++y) {
        priced += graph_.wireEdgeCost(WireEdge{seg.a.layer, seg.a.x, y});
      }
    }
  }
  EXPECT_NEAR(result.cost, priced, 1e-9);
}

TEST_F(PatternRouteTest, AvoidsCongestedCorridor) {
  // Saturate the straight corridor on ALL horizontal layers at row 2;
  // a Z/L detour must win.
  for (int layer = 0; layer < 4; layer += 2) {
    for (int x = 2; x < 6; ++x) {
      NetRoute jam;
      jam.segments.push_back(
          {GPoint{layer, x, 2}, GPoint{layer, x + 1, 2}});
      for (int i = 0; i < 12; ++i) graph_.applyRoute(jam, +1);
    }
  }
  const auto result = router_.routeTwoPin(GPoint{0, 1, 2}, GPoint{0, 7, 2});
  ASSERT_TRUE(result.ok);
  // The straight path would cost >= 6 edges * (0.5*100*2) = 600 on the
  // saturated rows; the detour must be cheaper than that.
  EXPECT_LT(result.cost, 600.0);
}

TEST_F(PatternRouteTest, TreeRouteCoversAllTerminals) {
  const std::vector<GPoint> terminals{
      GPoint{0, 1, 1}, GPoint{0, 8, 1}, GPoint{0, 4, 4}, GPoint{0, 8, 4}};
  const auto result = router_.routeTree(terminals);
  ASSERT_TRUE(result.ok);
  NetRoute route;
  route.routed = true;
  route.segments = result.segments;
  EXPECT_TRUE(routeConnectsTerminals(route, terminals));
  EXPECT_TRUE(graph_.routeInBounds(route));
}

TEST_F(PatternRouteTest, PriceTreeMatchesRouteTreeCost) {
  const std::vector<GPoint> terminals{GPoint{0, 0, 0}, GPoint{0, 9, 4},
                                      GPoint{0, 5, 2}};
  EXPECT_NEAR(router_.priceTree(terminals),
              router_.routeTree(terminals).cost, 1e-9);
}

// ---- MazeRouter -----------------------------------------------------------

class MazeRouteTest : public ::testing::Test {
 protected:
  MazeRouteTest()
      : db_(crp::testing::makeTinyDatabase()), graph_(db_), maze_(graph_) {}
  db::Database db_;
  RoutingGraph graph_;
  MazeRouter maze_;
};

TEST_F(MazeRouteTest, FindsStraightRoute) {
  const std::vector<GPoint> terminals{GPoint{0, 1, 2}, GPoint{0, 6, 2}};
  const auto result = maze_.routeTree(terminals);
  ASSERT_TRUE(result.ok);
  NetRoute route;
  route.routed = true;
  route.segments = result.segments;
  EXPECT_TRUE(routeConnectsTerminals(route, terminals));
  EXPECT_TRUE(graph_.routeInBounds(route));
}

TEST_F(MazeRouteTest, MultiTerminalTreeIsConnected) {
  const std::vector<GPoint> terminals{
      GPoint{0, 0, 0}, GPoint{0, 9, 0}, GPoint{0, 0, 4}, GPoint{0, 9, 4},
      GPoint{0, 5, 2}};
  const auto result = maze_.routeTree(terminals);
  ASSERT_TRUE(result.ok);
  NetRoute route;
  route.routed = true;
  route.segments = result.segments;
  EXPECT_TRUE(routeConnectsTerminals(route, terminals));
}

TEST_F(MazeRouteTest, MazeNeverBeatenByItselfAfterDetour) {
  // Maze route must be at least as cheap as the pattern route on the
  // same graph state (it searches a superset of the pattern paths,
  // modulo box clipping).
  PatternRouter pattern(graph_);
  const std::vector<GPoint> terminals{GPoint{0, 1, 1}, GPoint{0, 8, 3}};
  const auto mazeResult = maze_.routeTree(terminals);
  const auto patternResult = pattern.routeTree(terminals);
  ASSERT_TRUE(mazeResult.ok);
  ASSERT_TRUE(patternResult.ok);
  EXPECT_LE(mazeResult.cost, patternResult.cost + 1e-6);
}

TEST_F(MazeRouteTest, SingleTerminalTrivial) {
  const auto result = maze_.routeTree({GPoint{0, 3, 3}});
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.segments.empty());
}

// ---- GlobalRouter -----------------------------------------------------------

TEST(GlobalRouter, RoutesTinyDesignWithNoOpens) {
  const auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  const auto stats = router.run();
  EXPECT_EQ(stats.openNets, 0);
  EXPECT_GT(stats.wirelengthDbu, 0);
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    const auto terminals = router.netTerminals(n);
    if (terminals.size() < 2) continue;
    EXPECT_TRUE(router.route(n).routed);
    EXPECT_TRUE(routeConnectsTerminals(router.route(n), terminals));
  }
}

TEST(GlobalRouter, RoutesGridDesign) {
  const auto db = crp::testing::makeGridDatabase(12, 6);
  GlobalRouter router(db);
  const auto stats = router.run();
  EXPECT_EQ(stats.openNets, 0);
  // Every multi-terminal net connected.
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    const auto terminals = router.netTerminals(n);
    if (terminals.size() < 2) continue;
    EXPECT_TRUE(routeConnectsTerminals(router.route(n), terminals))
        << db.net(n).name;
  }
}

TEST(GlobalRouter, RipUpRemovesDemandExactly) {
  const auto db = crp::testing::makeGridDatabase(8, 4);
  GlobalRouter router(db);
  router.run();
  const auto wireBefore = router.graph().totalWireDbu();
  const auto viasBefore = router.graph().totalVias();
  // Rip up and restore every net; totals must return exactly.
  for (db::NetId n = 0; n < db.numNets(); ++n) router.ripUp(n);
  EXPECT_EQ(router.graph().totalWireDbu(), 0);
  EXPECT_EQ(router.graph().totalVias(), 0);
  for (db::NetId n = 0; n < db.numNets(); ++n) router.rerouteNet(n);
  EXPECT_GT(router.graph().totalWireDbu(), 0);
  // Not necessarily equal (order effects), but same magnitude.
  EXPECT_NEAR(static_cast<double>(router.graph().totalWireDbu()),
              static_cast<double>(wireBefore), 0.5 * wireBefore);
  (void)viasBefore;
}

TEST(GlobalRouter, NetCostPositiveForRoutedNets) {
  const auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  router.run();
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    if (router.route(n).routed && !router.route(n).segments.empty()) {
      EXPECT_GT(router.netRouteCost(n), 0.0);
    }
  }
}

TEST(GlobalRouter, GuidesCoverEveryRoutedNetAndItsPins) {
  const auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  router.run();
  const auto guides = router.buildGuides();
  ASSERT_EQ(guides.size(), static_cast<std::size_t>(db.numNets()));
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    EXPECT_EQ(guides[n].net, db.net(n).name);
    for (const db::NetPin& pin : db.net(n).pins) {
      const auto pos = db.pinPosition(pin);
      bool covered = false;
      for (const auto& rect : guides[n].rects) {
        if (rect.rect.containsClosed(pos)) covered = true;
      }
      EXPECT_TRUE(covered) << "pin of " << db.net(n).name << " not covered";
    }
  }
}

TEST(GlobalRouter, RerouteAfterCellMoveTracksNewPosition) {
  auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  router.run();
  const auto before = router.netTerminals(0);
  db.moveCell(0, geom::Point{900, 400});
  router.rerouteNet(0);
  router.rerouteNet(2);  // other net of c0
  const auto after = router.netTerminals(0);
  EXPECT_NE(before, after);
  EXPECT_TRUE(routeConnectsTerminals(router.route(0), after));
}

TEST(GlobalRouter, DeterministicAcrossRuns) {
  const auto db = crp::testing::makeGridDatabase(10, 5);
  groute::GlobalRouter a(db);
  groute::GlobalRouter b(db);
  const auto sa = a.run();
  const auto sb = b.run();
  EXPECT_EQ(sa.wirelengthDbu, sb.wirelengthDbu);
  EXPECT_EQ(sa.vias, sb.vias);
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    EXPECT_EQ(a.route(n).segments, b.route(n).segments) << db.net(n).name;
  }
}

TEST(GlobalRouter, TerminalsDeduplicated) {
  const auto db = crp::testing::makeTinyDatabase();
  GlobalRouter router(db);
  for (db::NetId n = 0; n < db.numNets(); ++n) {
    auto terminals = router.netTerminals(n);
    auto sorted = terminals;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
    EXPECT_EQ(terminals, sorted);  // returned sorted
  }
}

TEST(PatternRouteLayers, CongestionPushesRoutesUpward) {
  // Saturate layer 0 along a row; the router must prefer layer 2 (the
  // other horizontal layer) for a straight connection on that row.
  const auto db = crp::testing::makeTinyDatabase();
  RoutingGraph graph(db);
  for (int x = 0; x < 9; ++x) {
    NetRoute jam;
    jam.segments.push_back({GPoint{0, x, 1}, GPoint{0, x + 1, 1}});
    for (int i = 0; i < 15; ++i) graph.applyRoute(jam, +1);
  }
  PatternRouter router(graph);
  const auto result = router.routeTwoPin(GPoint{0, 0, 1}, GPoint{0, 9, 1});
  ASSERT_TRUE(result.ok);
  bool usedUpperLayer = false;
  for (const auto& seg : result.segments) {
    if (!seg.isVia() && seg.a.layer >= 2) usedUpperLayer = true;
    if (!seg.isVia() && seg.a.layer == 0) {
      // Any layer-0 run must be short (access stubs), not the trunk.
      EXPECT_LE(std::abs(seg.a.x - seg.b.x), 2);
    }
  }
  EXPECT_TRUE(usedUpperLayer);
}

TEST(RoutingGraphTest2, RouteInBoundsRejectsWrongDirection) {
  const auto db = crp::testing::makeTinyDatabase();
  RoutingGraph graph(db);
  NetRoute bad;
  bad.segments.push_back({GPoint{0, 2, 0}, GPoint{0, 2, 3}});  // V on H layer
  EXPECT_FALSE(graph.routeInBounds(bad));
  NetRoute diagonal;
  diagonal.segments.push_back({GPoint{0, 0, 0}, GPoint{0, 3, 3}});
  EXPECT_FALSE(graph.routeInBounds(diagonal));
  NetRoute viaMoved;
  viaMoved.segments.push_back({GPoint{0, 0, 0}, GPoint{1, 1, 0}});
  EXPECT_FALSE(graph.routeInBounds(viaMoved));
}

}  // namespace
}  // namespace crp::groute\n
