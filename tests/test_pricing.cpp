// Tests for the ECC incremental candidate-cost engine: terminal-set
// canonicalization + hashing, the sharded pricing cache, value-exact
// delta pricing, and the framework-level determinism guarantees
// (threads=1 vs threads=N, cache on vs off — identical selections and
// costs, bit for bit).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "crp/framework.hpp"
#include "crp/pricing_cache.hpp"
#include "test_helpers.hpp"

namespace crp::core {
namespace {

using groute::GPoint;

// ---- terminal-set hash -------------------------------------------------------

TEST(TerminalHash, OrderIndependentAfterCanonicalization) {
  std::vector<GPoint> a{{0, 3, 4}, {1, 1, 2}, {0, 5, 6}};
  std::vector<GPoint> b{{0, 5, 6}, {0, 3, 4}, {1, 1, 2}};
  canonicalizeTerminals(a);
  canonicalizeTerminals(b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(terminalSetHash(a), terminalSetHash(b));
}

TEST(TerminalHash, DuplicatesCollapse) {
  std::vector<GPoint> a{{0, 3, 4}, {0, 3, 4}, {1, 1, 2}};
  std::vector<GPoint> b{{1, 1, 2}, {0, 3, 4}};
  canonicalizeTerminals(a);
  canonicalizeTerminals(b);
  EXPECT_EQ(terminalSetHash(a), terminalSetHash(b));
}

TEST(TerminalHash, NoCollisionBetweenDistinctSmallSets) {
  // All canonical sets of size 1 and 2 over a small grid must hash
  // distinctly (the cache compares full keys, so a collision would not
  // be a correctness bug — but the hash should still be that good).
  std::vector<GPoint> points;
  for (int l = 0; l < 2; ++l) {
    for (int x = 0; x < 6; ++x) {
      for (int y = 0; y < 6; ++y) points.push_back(GPoint{l, x, y});
    }
  }
  std::set<std::uint64_t> hashes;
  std::size_t sets = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::vector<GPoint> single{points[i]};
    canonicalizeTerminals(single);
    hashes.insert(terminalSetHash(single));
    ++sets;
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      std::vector<GPoint> pair{points[i], points[j]};
      canonicalizeTerminals(pair);
      hashes.insert(terminalSetHash(pair));
      ++sets;
    }
  }
  EXPECT_EQ(hashes.size(), sets);
}

TEST(TerminalHash, SizeDistinguishesPrefixSets) {
  std::vector<GPoint> one{{0, 0, 0}};
  std::vector<GPoint> two{{0, 0, 0}, {0, 0, 1}};
  EXPECT_NE(terminalSetHash(one), terminalSetHash(two));
  EXPECT_NE(terminalSetHash({}), terminalSetHash(one));
}

// ---- pricing cache -----------------------------------------------------------

struct Fixture {
  Fixture() : db(crp::testing::makeGridDatabase(10, 6)), router(db) {
    router.run();
  }
  db::Database db;
  groute::GlobalRouter router;
};

TEST(PricingCache, HitReturnsIdenticalValue) {
  Fixture f;
  const groute::PatternRouter pattern(f.router.graph());
  groute::PatternRouter::Scratch scratch;
  PricingCache cache(8);
  std::vector<GPoint> terminals{{0, 1, 1}, {0, 4, 3}, {1, 2, 5}};
  canonicalizeTerminals(terminals);
  const double first = cache.price(terminals, pattern, scratch);
  const double second = cache.price(terminals, pattern, scratch);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, pattern.priceTree(terminals));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.cacheMisses, 1u);
  EXPECT_EQ(stats.cacheHits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PricingCache, DistinctSetsGetDistinctEntries) {
  Fixture f;
  const groute::PatternRouter pattern(f.router.graph());
  groute::PatternRouter::Scratch scratch;
  PricingCache cache(4);
  std::vector<GPoint> a{{0, 1, 1}, {0, 4, 3}};
  std::vector<GPoint> b{{0, 1, 1}, {0, 4, 4}};
  cache.price(a, pattern, scratch);
  cache.price(b, pattern, scratch);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().cacheMisses, 2u);
}

TEST(PricingCache, SharedAcrossThreads) {
  Fixture f;
  const groute::PatternRouter pattern(f.router.graph());
  PricingCache cache(64);
  std::vector<GPoint> terminals{{0, 1, 1}, {0, 4, 5}};
  util::ThreadPool pool(4);
  std::vector<double> prices(64, 0.0);
  pool.parallelFor(prices.size(), [&](std::size_t i) {
    static thread_local groute::PatternRouter::Scratch scratch;
    prices[i] = cache.price(terminals, pattern, scratch);
  });
  for (const double p : prices) EXPECT_EQ(p, prices[0]);
  EXPECT_EQ(cache.size(), 1u);
  const auto stats = cache.stats();
  // At least one miss computed it; racing duplicates are allowed but
  // every call must be accounted as a hit or a miss.
  EXPECT_GE(stats.cacheMisses, 1u);
  EXPECT_EQ(stats.cacheHits + stats.cacheMisses, prices.size());
}

// ---- engine == naive reference ----------------------------------------------

TEST(PricingEngine, MatchesNaiveReferencePrices) {
  Fixture f;
  const legalizer::IlpLegalizer legalizer(f.db);
  const std::vector<db::CellId> critical{1, 4, 9, 16, 23};
  auto engine = buildCandidates(f.db, legalizer, critical, nullptr);
  auto naive = engine;

  PricingOptions fast;  // cache + delta on
  priceCandidates(f.db, f.router, engine, nullptr, fast);

  const groute::PatternRouter pattern(f.router.graph());
  for (auto& cc : naive) {
    for (auto& candidate : cc.candidates) {
      candidate.routeCost = estimateCandidateCost(f.db, f.router, pattern,
                                                  cc.cell, candidate);
    }
  }
  for (std::size_t i = 0; i < engine.size(); ++i) {
    for (std::size_t k = 0; k < engine[i].candidates.size(); ++k) {
      EXPECT_NEAR(engine[i].candidates[k].routeCost,
                  naive[i].candidates[k].routeCost, 1e-9)
          << "cell " << engine[i].cell << " candidate " << k;
    }
  }
}

TEST(PricingEngine, CacheAndDeltaAreValueExact) {
  Fixture f;
  const legalizer::IlpLegalizer legalizer(f.db);
  const std::vector<db::CellId> critical{0, 5, 11, 17, 29};
  const auto base = buildCandidates(f.db, legalizer, critical, nullptr);

  auto priceWith = [&](bool cache, bool delta, PricingStats* stats) {
    auto copy = base;
    PricingOptions options;
    options.cacheEnabled = cache;
    options.deltaEnabled = delta;
    priceCandidates(f.db, f.router, copy, nullptr, options, stats);
    return copy;
  };

  PricingStats onStats;
  const auto off = priceWith(false, false, nullptr);
  const auto on = priceWith(true, true, &onStats);
  const auto cacheOnly = priceWith(true, false, nullptr);
  const auto deltaOnly = priceWith(false, true, nullptr);

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i].candidates.size(), on[i].candidates.size());
    for (std::size_t k = 0; k < off[i].candidates.size(); ++k) {
      // Bitwise equality: the engine substitutes identical values only.
      EXPECT_EQ(off[i].candidates[k].routeCost,
                on[i].candidates[k].routeCost);
      EXPECT_EQ(off[i].candidates[k].routeCost,
                cacheOnly[i].candidates[k].routeCost);
      EXPECT_EQ(off[i].candidates[k].routeCost,
                deltaOnly[i].candidates[k].routeCost);
    }
  }
  // The engine must actually be reusing work on this fixture.
  EXPECT_GT(onStats.cacheHits + onStats.deltaSkips, 0u);
}

TEST(PricingEngine, ReportsStats) {
  Fixture f;
  const legalizer::IlpLegalizer legalizer(f.db);
  PricingStats stats;
  auto candidates = buildCandidates(f.db, legalizer, {2, 7, 13}, nullptr);
  priceCandidates(f.db, f.router, candidates, nullptr, PricingOptions{},
                  &stats);
  EXPECT_GT(stats.netsPriced(), 0u);
  EXPECT_GT(stats.cacheMisses, 0u);
  EXPECT_GE(stats.hitRate(), 0.0);
  EXPECT_LE(stats.hitRate(), 1.0);
}

// ---- framework determinism ---------------------------------------------------

struct RunOutcome {
  std::vector<geom::Point> positions;
  std::vector<double> selectedCosts;

  friend bool operator==(const RunOutcome&, const RunOutcome&) = default;
};

RunOutcome runFramework(int threads, bool cache, bool delta) {
  auto db = crp::testing::makeGridDatabase(10, 6);
  groute::GlobalRouter router(db);
  router.run();
  CrpOptions options;
  options.iterations = 2;
  options.seed = 42;
  options.threads = threads;
  options.pricingCache = cache;
  options.deltaPricing = delta;
  CrpFramework framework(db, router, options);
  const CrpReport report = framework.run();
  RunOutcome outcome;
  for (db::CellId c = 0; c < db.numCells(); ++c) {
    outcome.positions.push_back(db.cell(c).pos);
  }
  for (const auto& iteration : report.iterations) {
    outcome.selectedCosts.push_back(iteration.selectedCost);
  }
  return outcome;
}

TEST(PricingEngine, DeterministicAcrossThreadsAndCacheModes) {
  const RunOutcome reference = runFramework(1, true, true);
  EXPECT_EQ(reference, runFramework(8, true, true));
  EXPECT_EQ(reference, runFramework(1, false, false));
  EXPECT_EQ(reference, runFramework(8, false, false));
  EXPECT_EQ(reference, runFramework(8, true, false));
  EXPECT_EQ(reference, runFramework(8, false, true));
}

TEST(PricingEngine, FrameworkReportCarriesPricingStats) {
  Fixture f;
  CrpOptions options;
  options.iterations = 2;
  CrpFramework framework(f.db, f.router, options);
  const CrpReport report = framework.run();
  PricingStats summed;
  for (const auto& iteration : report.iterations) {
    summed += iteration.pricing;
    EXPECT_GE(iteration.eccSeconds, 0.0);
  }
  EXPECT_EQ(report.pricing.cacheHits, summed.cacheHits);
  EXPECT_EQ(report.pricing.cacheMisses, summed.cacheMisses);
  EXPECT_EQ(report.pricing.deltaSkips, summed.deltaSkips);
  EXPECT_GT(report.pricing.netsPriced(), 0u);
}

}  // namespace
}  // namespace crp::core
