// Tests for the incremental ECO engine: the EcoDelta JSON codec and
// transactional application, the deterministic perturbation generator,
// CrpFramework::runEco (clean audits, thread-count determinism), and
// the persistent pricing cache's targeted invalidation — including the
// mutation test that shows a deliberately-stale entry is caught by the
// pricing-coherence invariant and cured by invalidateTerminals.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bmgen/generator.hpp"
#include "bmgen/perturb.hpp"
#include "check/audit.hpp"
#include "check/eco_equivalence.hpp"
#include "crp/framework.hpp"
#include "crp/pricing_cache.hpp"
#include "db/eco.hpp"
#include "db/legality.hpp"
#include "obs/json.hpp"
#include "obs/timeline.hpp"
#include "test_helpers.hpp"

namespace crp {
namespace {

using groute::GPoint;

// ---- EcoDelta codec ---------------------------------------------------------

db::EcoDelta sampleDelta() {
  db::EcoDelta delta;
  delta.moves.push_back({"c0", geom::Point{120, 200}});
  delta.addCells.push_back(
      {"x0", "INV_X1", geom::Point{300, 0}, geom::Orientation::kFS});
  delta.removeCells.push_back("c3");
  delta.addNets.push_back({"nx", {{"x0", "A"}, {"c1", "Y"}}});
  delta.addPins.push_back({"n1", "c0", "A"});
  delta.removePins.push_back({"n1", "c2", "A"});
  return delta;
}

TEST(EcoDelta, JsonRoundTrip) {
  const db::EcoDelta delta = sampleDelta();
  const obs::Json json = db::ecoDeltaToJson(delta);
  const db::EcoDelta back = db::ecoDeltaFromJson(json);
  EXPECT_EQ(back.size(), delta.size());
  ASSERT_EQ(back.moves.size(), 1u);
  EXPECT_EQ(back.moves[0].cell, "c0");
  EXPECT_EQ(back.moves[0].to, (geom::Point{120, 200}));
  ASSERT_EQ(back.addCells.size(), 1u);
  EXPECT_EQ(back.addCells[0].macro, "INV_X1");
  EXPECT_EQ(back.addCells[0].orient, geom::Orientation::kFS);
  ASSERT_EQ(back.removeCells.size(), 1u);
  EXPECT_EQ(back.removeCells[0], "c3");
  ASSERT_EQ(back.addNets.size(), 1u);
  ASSERT_EQ(back.addNets[0].pins.size(), 2u);
  EXPECT_EQ(back.addNets[0].pins[1].first, "c1");
  ASSERT_EQ(back.addPins.size(), 1u);
  EXPECT_EQ(back.addPins[0].net, "n1");
  ASSERT_EQ(back.removePins.size(), 1u);
  EXPECT_EQ(back.removePins[0].cell, "c2");
  // Round-trip through text too (the crp eco --delta path).
  const db::EcoDelta again =
      db::ecoDeltaFromJson(obs::Json::parse(json.dump(2)));
  EXPECT_EQ(again.size(), delta.size());
}

TEST(EcoDelta, FromJsonRejectsUnknownSchema) {
  obs::Json json = obs::Json::object();
  json.set("schemaVersion", 99);
  EXPECT_THROW(db::ecoDeltaFromJson(json), db::EcoError);
}

// ---- transactional application ----------------------------------------------

TEST(EcoApply, MoveAndRewire) {
  db::Database db = testing::makeTinyDatabase();
  const db::CellId c0 = db.findCell("c0");
  const db::NetId n1 = db.findNet("n1");

  db::EcoDelta delta;
  delta.moves.push_back({"c0", geom::Point{300, 200}});
  delta.removePins.push_back({"n1", "c3", "A"});
  delta.addPins.push_back({"n0", "c3", "A"});
  const db::EcoApplyResult applied = db::applyEcoDelta(db, delta);

  EXPECT_EQ(db.cell(c0).pos, (geom::Point{300, 200}));
  EXPECT_EQ(applied.movedCells, 1);
  EXPECT_EQ(applied.rewiredPins, 2);  // each detach and attach counts
  // Terminal-changed nets: n0 gained a pin, n1 lost one.
  const db::NetId n0 = db.findNet("n0");
  EXPECT_TRUE(std::count(applied.nets.begin(), applied.nets.end(), n0) == 1);
  EXPECT_TRUE(std::count(applied.nets.begin(), applied.nets.end(), n1) == 1);
  // Connectivity index stays consistent.
  const db::CellId c3 = db.findCell("c3");
  const auto& netsOfC3 = db.netsOfCell(c3);
  EXPECT_TRUE(std::count(netsOfC3.begin(), netsOfC3.end(), n0) == 1);
  EXPECT_TRUE(std::count(netsOfC3.begin(), netsOfC3.end(), n1) == 0);
}

TEST(EcoApply, AddAndRemoveCells) {
  db::Database db = testing::makeTinyDatabase();
  const int cellsBefore = db.numCells();

  db::EcoDelta delta;
  delta.addCells.push_back(
      {"x0", "INV_X1", geom::Point{400, 0}, geom::Orientation::kN});
  delta.addNets.push_back({"nx", {{"x0", "Y"}, {"c2", "A"}}});
  delta.removeCells.push_back("c3");
  const db::EcoApplyResult applied = db::applyEcoDelta(db, delta);

  EXPECT_EQ(db.numCells(), cellsBefore + 1);
  EXPECT_EQ(applied.addedCells, 1);
  EXPECT_EQ(applied.addedNets, 1);
  EXPECT_EQ(applied.removedCells, 1);
  // The removed cell is tombstoned: fixed, detached from every net.
  const db::CellId c3 = db.findCell("c3");
  EXPECT_TRUE(db.cell(c3).fixed);
  EXPECT_TRUE(db.netsOfCell(c3).empty());
  // The new cell is wired.
  const db::CellId x0 = db.findCell("x0");
  ASSERT_EQ(db.netsOfCell(x0).size(), 1u);
  EXPECT_EQ(db.net(db.netsOfCell(x0)[0]).name, "nx");
}

TEST(EcoApply, RollsBackOnIllegalMove) {
  db::Database db = testing::makeTinyDatabase();
  const geom::Point before = db.cell(db.findCell("c0")).pos;
  const geom::Point c1Before = db.cell(db.findCell("c1")).pos;

  db::EcoDelta delta;
  // First edit is fine, second lands c1 off-row — the whole delta must
  // roll back, including the already-applied first move.
  delta.moves.push_back({"c0", geom::Point{300, 200}});
  delta.moves.push_back({"c1", geom::Point{150, 250}});
  EXPECT_THROW(db::applyEcoDelta(db, delta), db::EcoError);
  EXPECT_EQ(db.cell(db.findCell("c0")).pos, before);
  EXPECT_EQ(db.cell(db.findCell("c1")).pos, c1Before);
}

TEST(EcoApply, RollsBackNetlistEdits) {
  db::Database db = testing::makeTinyDatabase();
  const int cellsBefore = db.numCells();
  const int netsBefore = db.numNets();
  const std::size_t n1Pins = db.net(db.findNet("n1")).pins.size();

  db::EcoDelta delta;
  delta.addCells.push_back(
      {"x0", "INV_X1", geom::Point{400, 0}, geom::Orientation::kN});
  delta.removePins.push_back({"n1", "c3", "A"});
  delta.addNets.push_back({"nx", {{"x0", "Y"}, {"c2", "A"}}});
  delta.removeCells.push_back("no_such_cell");  // fails late
  EXPECT_THROW(db::applyEcoDelta(db, delta), db::EcoError);
  EXPECT_EQ(db.numCells(), cellsBefore);
  EXPECT_EQ(db.numNets(), netsBefore);
  EXPECT_EQ(db.net(db.findNet("n1")).pins.size(), n1Pins);
  EXPECT_EQ(db.findCell("no_such_cell"), db::kInvalidId);
  EXPECT_EQ(db.findCell("x0"), db::kInvalidId);
}

// ---- perturbation generator -------------------------------------------------

TEST(Perturb, DeterministicAndApplicable) {
  bmgen::BenchmarkSpec spec;
  spec.name = "perturb_test";
  spec.targetCells = 150;
  spec.seed = 5;
  db::Database db = bmgen::generateBenchmark(spec);

  bmgen::PerturbOptions options;
  options.frac = 0.02;
  options.seed = 7;
  const db::EcoDelta a = bmgen::perturbDesign(db, options);
  const db::EcoDelta b = bmgen::perturbDesign(db, options);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(db::ecoDeltaToJson(a).dump(), db::ecoDeltaToJson(b).dump());
  // Swaps come in pairs and respect the frac cap.
  EXPECT_EQ(a.moves.size() % 2, 0u);
  // Applies cleanly to the design it was derived from (legal by
  // construction, so no EcoError).
  EXPECT_NO_THROW(db::applyEcoDelta(db, a));
}

// On a mixed-height design the generator must only pair cells of equal
// footprint (width AND height): a single-row cell swapped onto a
// double-row slot would overlap its upper-strip neighbours.  The delta
// must stay legal by construction.
TEST(Perturb, MixedHeightSwapsStayLegal) {
  bmgen::BenchmarkSpec spec;
  spec.name = "perturb_multirow";
  spec.targetCells = 150;
  spec.seed = 5;
  spec.multiRowFrac = 0.3;
  db::Database db = bmgen::generateBenchmark(spec);

  bmgen::PerturbOptions options;
  options.frac = 0.05;
  options.seed = 7;
  const db::EcoDelta delta = bmgen::perturbDesign(db, options);
  ASSERT_FALSE(delta.empty());
  EXPECT_NO_THROW(db::applyEcoDelta(db, delta));
  EXPECT_TRUE(db::isPlacementLegal(db));
}

TEST(Perturb, DifferentSeedsDiffer) {
  bmgen::BenchmarkSpec spec;
  spec.targetCells = 150;
  spec.seed = 5;
  db::Database db = bmgen::generateBenchmark(spec);
  const db::EcoDelta a = bmgen::perturbDesign(db, {0.02, 1});
  const db::EcoDelta b = bmgen::perturbDesign(db, {0.02, 2});
  EXPECT_NE(db::ecoDeltaToJson(a).dump(), db::ecoDeltaToJson(b).dump());
}

// ---- pricing-cache invalidation ---------------------------------------------

struct RoutedFixture {
  RoutedFixture() : db(testing::makeGridDatabase(10, 6)), router(db) {
    router.run();
  }
  db::Database db;
  groute::GlobalRouter router;
};

TEST(EcoCache, InvalidateTerminalsEvictsOnlyOverlap) {
  RoutedFixture f;
  const groute::PatternRouter pattern(f.router.graph());
  groute::PatternRouter::Scratch scratch;
  core::PricingCache cache(8);
  std::vector<GPoint> left{{0, 0, 0}, {0, 1, 1}};
  std::vector<GPoint> right{{0, 4, 4}, {0, 4, 5}};
  core::canonicalizeTerminals(left);
  core::canonicalizeTerminals(right);
  cache.price(left, pattern, scratch);
  cache.price(right, pattern, scratch);
  ASSERT_EQ(cache.size(), 2u);

  // Dirty region covering only the left entry's bbox.
  const groute::GCellRect dirty{0, 0, 2, 2};
  const std::size_t evicted = cache.invalidateTerminals(
      [&dirty](const std::vector<GPoint>& terminals) {
        groute::GCellRect bbox;
        for (const GPoint& t : terminals) bbox.cover(t.x, t.y);
        return bbox.overlaps(dirty);
      });
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(cache.size(), 1u);
  // Survivor is the right entry, still value-exact.
  const core::PricingCacheEntries entries = cache.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, right);
  EXPECT_EQ(entries[0].second, pattern.priceTree(right));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EcoCache, StaleEntryCaughtByCoherenceAuditThenCured) {
  RoutedFixture f;
  const groute::PatternRouter pattern(f.router.graph());
  groute::PatternRouter::Scratch scratch;
  core::PricingCache cache(8);
  std::vector<GPoint> terminals{{0, 1, 1}, {0, 3, 3}};
  core::canonicalizeTerminals(terminals);
  cache.price(terminals, pattern, scratch);

  {
    check::AuditReport clean;
    check::auditCachedPrices(pattern, cache.entries(), clean);
    EXPECT_CLEAN_AUDIT(clean);
  }

  // Mutation: change demand inside the entry's bbox *without*
  // invalidating — re-apply an existing route crossing it.  The cached
  // price is now stale and the coherence invariant must say so.
  db::NetId crossing = db::kInvalidId;
  for (db::NetId n = 0; n < f.db.numNets() && crossing == db::kInvalidId;
       ++n) {
    const groute::NetRoute& route = f.router.route(n);
    if (!route.routed) continue;
    for (const groute::RouteSegment& seg : route.segments) {
      const groute::GCellRect bbox{1, 1, 3, 3};
      groute::GCellRect segRect;
      segRect.cover(seg.a.x, seg.a.y);
      segRect.cover(seg.b.x, seg.b.y);
      if (!seg.isVia() && segRect.overlaps(bbox)) {
        crossing = n;
        break;
      }
    }
  }
  ASSERT_NE(crossing, db::kInvalidId);
  f.router.graph().applyRoute(f.router.route(crossing), +1);

  check::AuditReport stale;
  check::auditCachedPrices(pattern, cache.entries(), stale);
  EXPECT_FALSE(stale.clean());
  bool sawCoherence = false;
  for (const auto& failure : stale.failures) {
    if (failure.invariant == check::Invariant::kPricingCoherence) {
      sawCoherence = true;
    }
  }
  EXPECT_TRUE(sawCoherence);

  // The cure is exactly what invalidateEcoCache does: evict entries
  // whose bbox overlaps the changed region, then the audit is clean.
  groute::GCellRect region = f.router.netExtent(crossing);
  region.expand(f.router.options().mazeMargin + 1,
                f.router.graph().grid().countX() - 1,
                f.router.graph().grid().countY() - 1);
  cache.invalidateTerminals([&region](const std::vector<GPoint>& t) {
    groute::GCellRect bbox;
    for (const GPoint& p : t) bbox.cover(p.x, p.y);
    return bbox.overlaps(region);
  });
  check::AuditReport cured;
  check::auditCachedPrices(pattern, cache.entries(), cured);
  EXPECT_CLEAN_AUDIT(cured);

  // Undo the mutation so the fixture's graph is consistent again.
  f.router.graph().applyRoute(f.router.route(crossing), -1);
}

// ---- runEco -----------------------------------------------------------------

core::EcoReport runEcoOn(db::Database& db, groute::GlobalRouter& router,
                         const db::EcoDelta& delta, int routerThreads) {
  core::CrpOptions options;
  options.iterations = 1;
  options.seed = 11;
  options.threads = 1;
  options.routerThreads = routerThreads;
  options.auditLevel = check::AuditLevel::kParanoid;
  core::CrpFramework framework(db, router, options);
  framework.run();
  core::EcoOptions eco;
  eco.iterations = 1;
  return framework.runEco(delta, eco);
}

TEST(RunEco, PatchesAndAuditsClean) {
  bmgen::BenchmarkSpec spec;
  spec.name = "eco_small";
  spec.targetCells = 120;
  spec.seed = 3;
  db::Database db = bmgen::generateBenchmark(spec);
  groute::GlobalRouterOptions routerOptions;
  groute::GlobalRouter router(db, routerOptions);
  router.run();

  core::CrpOptions options;
  options.iterations = 1;
  options.seed = 11;
  options.auditLevel = check::AuditLevel::kParanoid;
  core::CrpFramework framework(db, router, options);
  framework.run();

  const db::EcoDelta delta = bmgen::perturbDesign(db, {0.02, 9});
  ASSERT_FALSE(delta.empty());
  const core::EcoReport report = framework.runEco(delta);
  EXPECT_GT(report.movedCells, 0);
  EXPECT_GT(report.dirtyNets, 0);
  EXPECT_GT(report.scopeCells, 0);
  EXPECT_EQ(report.failedReroutes, 0);
  EXPECT_EQ(static_cast<int>(report.crp.iterations.size()), 1);

  const check::DbAuditor auditor(db, &router);
  EXPECT_CLEAN_AUDIT(auditor.auditAll());
}

TEST(RunEco, FingerprintIdenticalAcrossRouterThreads) {
  // Satellite: ECO determinism under the batch reroute planner — the
  // post-ECO state fingerprint must be identical at 1 vs 8 router
  // threads (conflict-free batches are value-exact by construction).
  bmgen::BenchmarkSpec spec;
  spec.name = "eco_threads";
  spec.targetCells = 140;
  spec.seed = 4;

  std::uint64_t fingerprints[2] = {0, 0};
  const int threadCounts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    db::Database db = bmgen::generateBenchmark(spec);
    groute::GlobalRouterOptions routerOptions;
    routerOptions.routerThreads = threadCounts[i];
    groute::GlobalRouter router(db, routerOptions);
    router.run();
    const db::EcoDelta delta = [&db] {
      bmgen::PerturbOptions p;
      p.frac = 0.02;
      p.seed = 13;
      // Derive from the routed-but-pre-CRP state so both variants see
      // the same design; the base CR&P run is deterministic anyway.
      return bmgen::perturbDesign(db, p);
    }();
    runEcoOn(db, router, delta, threadCounts[i]);
    fingerprints[i] = check::flowFingerprint(db, router);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

TEST(RunEco, SecondDeltaReusesCache) {
  bmgen::BenchmarkSpec spec;
  spec.name = "eco_reuse";
  spec.targetCells = 120;
  spec.seed = 6;
  db::Database db = bmgen::generateBenchmark(spec);
  groute::GlobalRouter router(db);
  router.run();
  core::CrpOptions options;
  options.iterations = 1;
  options.seed = 11;
  core::CrpFramework framework(db, router, options);
  framework.run();

  const db::EcoDelta first = bmgen::perturbDesign(db, {0.01, 21});
  ASSERT_FALSE(first.empty());
  const core::EcoReport r1 = framework.runEco(first);
  // A second, disjointly-seeded delta prices against the persistent
  // cache: the prior call's entries give hits, and its own invalidation
  // evicts some of them.
  const db::EcoDelta second = bmgen::perturbDesign(db, {0.01, 22});
  ASSERT_FALSE(second.empty());
  const core::EcoReport r2 = framework.runEco(second);
  EXPECT_GT(r1.crp.pricing.netsPriced(), 0u);
  EXPECT_GT(r2.crp.pricing.netsPriced(), 0u);
  const check::DbAuditor auditor(db, &router);
  EXPECT_CLEAN_AUDIT(auditor.auditAll());
}

// ---- eco-vs-scratch pairing -------------------------------------------------

TEST(EcoEquivalence, PairedRunClean) {
  bmgen::BenchmarkSpec spec;
  spec.name = "eco_pair";
  spec.targetCells = 120;
  spec.utilization = 0.75;
  spec.seed = 8;
  check::EcoPairOptions options;
  options.baseIterations = 1;
  options.ecoIterations = 1;
  options.perturbSeed = 8;
  const check::EcoPairResult result = check::runEcoVsScratch(spec, options);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.deltaEdits, 0u);
  EXPECT_GT(result.dirtyNets, 0);
  EXPECT_GT(result.ecoSeconds, 0.0);
  EXPECT_GT(result.scratchSeconds, 0.0);
}

// The eco-vs-scratch contract must hold on macro designs too: the
// dirty-region patch has to respect hard-blocked edges and fixed-cell
// footprints exactly like the scratch rebuild, or the paired audits
// diverge.  This is the scenario-axis coverage for the ECO engine
// (docs/scenarios.md).
TEST(EcoEquivalence, PairedRunCleanOnMacroDesign) {
  bmgen::BenchmarkSpec spec;
  spec.name = "eco_macro_pair";
  spec.targetCells = 120;
  spec.utilization = 0.75;
  spec.seed = 9;
  spec.macroCount = 2;
  check::EcoPairOptions options;
  options.baseIterations = 1;
  options.ecoIterations = 1;
  options.perturbSeed = 9;
  const check::EcoPairResult result = check::runEcoVsScratch(spec, options);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.deltaEdits, 0u);
  EXPECT_GT(result.dirtyNets, 0);
}

// ---- timeline eco flag ------------------------------------------------------

TEST(Timeline, EcoFlagRoundTripsAndStaysAbsentForBatch) {
  obs::TimelineRecord record;
  record.iteration = 2;
  record.eco = true;
  const obs::Json json = record.toJson();
  EXPECT_NE(json.find("eco"), nullptr);
  EXPECT_TRUE(obs::TimelineRecord::fromJson(json).eco);

  obs::TimelineRecord batch;
  batch.iteration = 1;
  // Batch records serialize without the key at all, so pre-ECO golden
  // fingerprints stay byte-identical.
  EXPECT_EQ(batch.toJson().find("eco"), nullptr);
  EXPECT_FALSE(obs::TimelineRecord::fromJson(batch.toJson()).eco);
}

}  // namespace
}  // namespace crp
